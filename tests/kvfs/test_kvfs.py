"""KVFS integration tests against the real sharded KV store."""

import pytest

from repro.kv.client import KvClient
from repro.kv.server import KvCluster
from repro.kvfs import schema
from repro.kvfs.fs import Kvfs, KvfsError, S_IFDIR, S_IFREG
from repro.params import default_params
from repro.proto.filemsg import Errno
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.network import Fabric


def build(params=None):
    env = Environment()
    p = params or default_params()
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    cluster = KvCluster(env, fabric, p)
    fabric.attach("dpu")
    kv = KvClient(
        fabric, "dpu", cluster.shard_names(),
        route_fn=schema.routing_key, scan_route_fn=schema.scan_routing,
    )
    dpu_cpu = CpuPool(env, p.dpu_cores, perf=p.dpu_perf, switch_cost=0)
    fs = Kvfs(env, kv, dpu_cpu, p)
    return env, fs


def run(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_create_and_stat():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"hello.txt")
        got = yield from fs.stat(attr.ino)
        return attr, got

    attr, got = run(env, flow())
    assert attr.ino == got.ino
    assert got.mode & 0o170000 == S_IFREG
    assert got.size == 0


def test_create_duplicate_rejected():
    env, fs = build()

    def flow():
        yield from fs.create(schema.ROOT_INO, b"dup")
        try:
            yield from fs.create(schema.ROOT_INO, b"dup")
        except KvfsError as e:
            return e.errno_code

    assert run(env, flow()) == Errno.EEXIST


def test_lookup_missing_raises_enoent():
    env, fs = build()

    def flow():
        yield from fs.ensure_root()
        try:
            yield from fs.lookup(schema.ROOT_INO, b"ghost")
        except KvfsError as e:
            return e.errno_code

    assert run(env, flow()) == Errno.ENOENT


def test_small_file_write_read():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"small")
        n = yield from fs.write(attr.ino, 0, b"tiny payload")
        data = yield from fs.read(attr.ino, 0, 100)
        st = yield from fs.stat(attr.ino)
        return n, data, st.size

    n, data, size = run(env, flow())
    assert n == 12 and data == b"tiny payload" and size == 12


def test_small_file_partial_overwrite():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"f")
        yield from fs.write(attr.ino, 0, b"aaaaaaaaaa")
        yield from fs.write(attr.ino, 3, b"BBB")
        return (yield from fs.read(attr.ino, 0, 10))

    assert run(env, flow()) == b"aaaBBBaaaa"


def test_small_to_big_conversion():
    """Crossing 8 KiB deletes the small KV and creates big-file blocks."""
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"grows")
        yield from fs.write(attr.ino, 0, b"s" * 4096)  # small
        small_exists_before = (yield from fs.kv.get(schema.small_key(attr.ino))) is not None
        yield from fs.write(attr.ino, 4096, b"B" * 8192)  # grows to 12 KiB
        small_exists_after = (yield from fs.kv.get(schema.small_key(attr.ino))) is not None
        data = yield from fs.read(attr.ino, 0, 12288)
        st = yield from fs.stat(attr.ino)
        return small_exists_before, small_exists_after, data, st

    before, after, data, st = run(env, flow())
    assert before is True and after is False
    assert data == b"s" * 4096 + b"B" * 8192
    assert st.size == 12288
    assert st.blocks >= 1  # big-file format


def test_big_file_inplace_block_update():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"big")
        yield from fs.write(attr.ino, 0, b"x" * 32768)
        # In-place update of the second 8K block only.
        yield from fs.write(attr.ino, 8192, b"Y" * 8192)
        data = yield from fs.read(attr.ino, 0, 32768)
        return data

    data = run(env, flow())
    assert data[:8192] == b"x" * 8192
    assert data[8192:16384] == b"Y" * 8192
    assert data[16384:] == b"x" * 16384


def test_big_file_unaligned_rmw():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"rmw")
        yield from fs.write(attr.ino, 0, b"0" * 20000)
        yield from fs.write(attr.ino, 5000, b"MIDDLE")
        return (yield from fs.read(attr.ino, 4998, 10))

    assert run(env, flow()) == b"00MIDDLE00"


def test_sparse_file_holes_read_zero():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"sparse")
        yield from fs.write(attr.ino, 100000, b"tail")
        head = yield from fs.read(attr.ino, 0, 16)
        tail = yield from fs.read(attr.ino, 100000, 4)
        st = yield from fs.stat(attr.ino)
        return head, tail, st.size

    head, tail, size = run(env, flow())
    assert head == bytes(16)
    assert tail == b"tail"
    assert size == 100004


def test_read_past_eof_is_short():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"short")
        yield from fs.write(attr.ino, 0, b"abc")
        full = yield from fs.read(attr.ino, 0, 100)
        beyond = yield from fs.read(attr.ino, 50, 10)
        return full, beyond

    full, beyond = run(env, flow())
    assert full == b"abc" and beyond == b""


def test_mkdir_readdir():
    env, fs = build()

    def flow():
        d = yield from fs.mkdir(schema.ROOT_INO, b"etc")
        yield from fs.create(d.ino, b"passwd")
        yield from fs.create(d.ino, b"hosts")
        yield from fs.mkdir(d.ino, b"conf.d")
        entries = yield from fs.readdir(d.ino)
        root_entries = yield from fs.readdir(schema.ROOT_INO)
        return entries, root_entries

    entries, root_entries = run(env, flow())
    names = sorted(n for n, _ in entries)
    assert names == [b"conf.d", b"hosts", b"passwd"]
    assert [n for n, _ in root_entries] == [b"etc"]


def test_readdir_is_ordered_prefix_scan():
    env, fs = build()

    def flow():
        d = yield from fs.mkdir(schema.ROOT_INO, b"dir")
        for name in [b"zz", b"aa", b"mm"]:
            yield from fs.create(d.ino, name)
        return (yield from fs.readdir(d.ino))

    entries = run(env, flow())
    assert [n for n, _ in entries] == [b"aa", b"mm", b"zz"]


def test_path_resolution():
    env, fs = build()

    def flow():
        a = yield from fs.mkdir(schema.ROOT_INO, b"a")
        b = yield from fs.mkdir(a.ino, b"b")
        f = yield from fs.create(b.ino, b"file.txt")
        got = yield from fs.resolve("/a/b/file.txt")
        return f.ino, got.ino

    f_ino, got_ino = run(env, flow())
    assert f_ino == got_ino


def test_resolve_through_file_raises_enotdir():
    env, fs = build()

    def flow():
        yield from fs.create(schema.ROOT_INO, b"plain")
        try:
            yield from fs.resolve("/plain/deeper")
        except KvfsError as e:
            return e.errno_code

    assert run(env, flow()) == Errno.ENOTDIR


def test_unlink_removes_everything():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"gone")
        yield from fs.write(attr.ino, 0, b"d" * 20000)  # big format
        yield from fs.unlink(schema.ROOT_INO, b"gone")
        entries = yield from fs.readdir(schema.ROOT_INO)
        leftover = yield from fs.kv.scan_prefix(schema.inode_scan_prefix(attr.ino))
        block0 = yield from fs.kv.get(schema.block_key(attr.ino, 0))
        a = yield from fs.kv.get(schema.attr_key(attr.ino))
        return entries, leftover, block0, a

    entries, leftover, block0, a = run(env, flow())
    assert entries == [] and leftover == [] and block0 is None and a is None


def test_rmdir_nonempty_rejected():
    env, fs = build()

    def flow():
        d = yield from fs.mkdir(schema.ROOT_INO, b"full")
        yield from fs.create(d.ino, b"occupant")
        try:
            yield from fs.rmdir(schema.ROOT_INO, b"full")
        except KvfsError as e:
            return e.errno_code

    assert run(env, flow()) == Errno.ENOTEMPTY


def test_rmdir_empty_succeeds():
    env, fs = build()

    def flow():
        yield from fs.mkdir(schema.ROOT_INO, b"empty")
        yield from fs.rmdir(schema.ROOT_INO, b"empty")
        return (yield from fs.readdir(schema.ROOT_INO))

    assert run(env, flow()) == []


def test_rename_within_directory():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"old")
        yield from fs.write(attr.ino, 0, b"content")
        yield from fs.rename(schema.ROOT_INO, b"old", schema.ROOT_INO, b"new")
        got = yield from fs.lookup(schema.ROOT_INO, b"new")
        data = yield from fs.read(got.ino, 0, 7)
        entries = yield from fs.readdir(schema.ROOT_INO)
        return attr.ino, got.ino, data, entries

    old_ino, new_ino, data, entries = run(env, flow())
    assert old_ino == new_ino and data == b"content"
    assert [n for n, _ in entries] == [b"new"]


def test_rename_across_directories():
    env, fs = build()

    def flow():
        src = yield from fs.mkdir(schema.ROOT_INO, b"src")
        dst = yield from fs.mkdir(schema.ROOT_INO, b"dst")
        f = yield from fs.create(src.ino, b"file")
        yield from fs.rename(src.ino, b"file", dst.ino, b"file2")
        src_entries = yield from fs.readdir(src.ino)
        dst_entries = yield from fs.readdir(dst.ino)
        return src_entries, dst_entries, f.ino

    src_entries, dst_entries, ino = run(env, flow())
    assert src_entries == []
    assert dst_entries == [(b"file2", ino)]


def test_rename_replaces_existing_target():
    env, fs = build()

    def flow():
        a = yield from fs.create(schema.ROOT_INO, b"a")
        yield from fs.write(a.ino, 0, b"from-a")
        b = yield from fs.create(schema.ROOT_INO, b"b")
        yield from fs.write(b.ino, 0, b"from-b")
        yield from fs.rename(schema.ROOT_INO, b"a", schema.ROOT_INO, b"b")
        got = yield from fs.lookup(schema.ROOT_INO, b"b")
        data = yield from fs.read(got.ino, 0, 10)
        entries = yield from fs.readdir(schema.ROOT_INO)
        return data, entries

    data, entries = run(env, flow())
    assert data == b"from-a"
    assert [n for n, _ in entries] == [b"b"]


def test_truncate_shrink_big_file():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"t")
        yield from fs.write(attr.ino, 0, b"z" * 40000)
        yield from fs.truncate(attr.ino, 10000)
        st = yield from fs.stat(attr.ino)
        data = yield from fs.read(attr.ino, 0, 50000)
        # Blocks past the cut must be gone from the store.
        b4 = yield from fs.kv.get(schema.block_key(attr.ino, 4))
        return st.size, data, b4

    size, data, b4 = run(env, flow())
    assert size == 10000
    assert data == b"z" * 10000
    assert b4 is None


def test_truncate_then_extend_reads_zeros():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"t2")
        yield from fs.write(attr.ino, 0, b"q" * 20000)
        yield from fs.truncate(attr.ino, 5000)
        yield from fs.write(attr.ino, 9000, b"end")
        return (yield from fs.read(attr.ino, 4998, 10))

    # bytes 4998-4999 survive; 5000.. are zeros until offset 9000
    assert run(env, flow()) == b"qq" + bytes(8)


def test_truncate_small_file():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"ts")
        yield from fs.write(attr.ino, 0, b"abcdef")
        yield from fs.truncate(attr.ino, 3)
        data = yield from fs.read(attr.ino, 0, 10)
        st = yield from fs.stat(attr.ino)
        return data, st.size

    assert run(env, flow()) == (b"abc", 3)


def test_hardlink_shares_data_and_survives_one_unlink():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"orig")
        yield from fs.write(attr.ino, 0, b"shared")
        yield from fs.link(attr.ino, schema.ROOT_INO, b"alias")
        yield from fs.unlink(schema.ROOT_INO, b"orig")
        got = yield from fs.lookup(schema.ROOT_INO, b"alias")
        data = yield from fs.read(got.ino, 0, 6)
        st = yield from fs.stat(got.ino)
        return data, st.nlink

    data, nlink = run(env, flow())
    assert data == b"shared" and nlink == 1


def test_symlink_readlink():
    env, fs = build()

    def flow():
        yield from fs.symlink(schema.ROOT_INO, b"lnk", b"/target/path")
        attr = yield from fs.lookup(schema.ROOT_INO, b"lnk")
        target = yield from fs.readlink(attr.ino)
        return target

    assert run(env, flow()) == b"/target/path"


def test_write_to_directory_rejected():
    env, fs = build()

    def flow():
        d = yield from fs.mkdir(schema.ROOT_INO, b"d")
        try:
            yield from fs.write(d.ino, 0, b"nope")
        except KvfsError as e:
            return e.errno_code

    assert run(env, flow()) == Errno.EISDIR


def test_name_too_long_rejected():
    env, fs = build()

    def flow():
        try:
            yield from fs.create(schema.ROOT_INO, b"x" * 1025)
        except (KvfsError, ValueError) as e:
            return e

    err = run(env, flow())
    assert err is not None


def test_large_directory_scan():
    env, fs = build()

    def flow():
        d = yield from fs.mkdir(schema.ROOT_INO, b"bigdir")
        for i in range(100):
            yield from fs.create(d.ino, f"file-{i:04d}".encode())
        entries = yield from fs.readdir(d.ino)
        return entries

    entries = run(env, flow())
    assert len(entries) == 100
    assert [n for n, _ in entries] == sorted(n for n, _ in entries)


def test_inode_numbers_unique():
    env, fs = build()

    def flow():
        inos = []
        for i in range(40):
            a = yield from fs.create(schema.ROOT_INO, f"u{i}".encode())
            inos.append(a.ino)
        return inos

    inos = run(env, flow())
    assert len(set(inos)) == 40


def test_fsync_completes():
    env, fs = build()

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"f")
        yield from fs.write(attr.ino, 0, b"data")
        yield from fs.fsync(attr.ino)
        return True

    assert run(env, flow())
