"""Model-based testing: the ext4-like FS vs an in-memory oracle."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.localfs.ext4sim import Ext4Error, Ext4Fs, ROOT_INO
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.nvme_device import NvmeSsd


def build():
    env = Environment()
    p = default_params()
    ssd = NvmeSsd(env, capacity_blocks=1 << 18)
    cpu = CpuPool(env, 8, switch_cost=0)
    fs = Ext4Fs(env, ssd, cpu, p, cache_pages=256, max_inodes=1024)
    return env, fs


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "write", "read", "truncate", "unlink", "fsync"]),
        st.integers(0, 4),  # name selector
        st.integers(0, 60000),  # offset / size
        st.binary(min_size=0, max_size=15000),  # payload
        st.booleans(),  # direct I/O?
    ),
    min_size=1,
    max_size=18,
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops_strategy)
def test_ext4_matches_oracle(ops):
    env, fs = build()
    names = [b"a", b"b", b"c", b"d", b"e"]
    model: dict[bytes, bytearray] = {}
    inos: dict[bytes, int] = {}

    def scenario():
        for kind, nsel, offset, payload, direct in ops:
            name = names[nsel % len(names)]
            if kind == "create":
                if name in model:
                    with pytest.raises(Ext4Error):
                        yield from fs.create(ROOT_INO, name)
                else:
                    inode = yield from fs.create(ROOT_INO, name)
                    inos[name] = inode.ino
                    model[name] = bytearray()
            elif name not in model:
                continue
            elif kind == "write":
                if not payload:
                    continue
                buf = model[name]
                if len(buf) < offset + len(payload):
                    buf.extend(b"\0" * (offset + len(payload) - len(buf)))
                buf[offset : offset + len(payload)] = payload
                yield from fs.write(inos[name], offset, payload, direct=direct)
            elif kind == "read":
                got = yield from fs.read(inos[name], offset, 20000, direct=direct)
                assert got == bytes(model[name][offset : offset + 20000])
            elif kind == "truncate":
                size = offset
                buf = model[name]
                if size <= len(buf):
                    model[name] = buf[:size]
                else:
                    buf.extend(b"\0" * (size - len(buf)))
                yield from fs.truncate(inos[name], size)
                st_ = yield from fs.stat(inos[name])
                assert st_.size == len(model[name])
            elif kind == "unlink":
                yield from fs.unlink(ROOT_INO, name)
                del model[name]
                del inos[name]
            elif kind == "fsync":
                yield from fs.fsync(inos[name])
        # Final: every live file reads back exactly, and the listing agrees.
        for name, buf in model.items():
            got = yield from fs.read(inos[name], 0, max(len(buf), 1))
            assert got == bytes(buf), f"content mismatch for {name!r}"
        entries = yield from fs.readdir(ROOT_INO)
        assert sorted(n for n, _ in entries) == sorted(model)

    env.run(until=env.process(scenario()))
