"""Unit tests for the block allocator, disk inodes, journal and page cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.localfs.allocator import AllocError, BitmapAllocator
from repro.localfs.inode import DiskInode, INODE_SIZE, S_IFDIR
from repro.localfs.journal import Journal
from repro.localfs.pagecache import PageCache
from repro.sim.core import Environment
from repro.sim.nvme_device import BLOCK, NvmeSsd


# ---------------------------------------------------------------- allocator
def test_alloc_single_run_when_possible():
    a = BitmapAllocator(100, 1000)
    ext = a.alloc_extents(64)
    assert ext == [(100, 64)]
    assert a.free_blocks() == 936


def test_alloc_spans_runs_when_fragmented():
    a = BitmapAllocator(0, 100)
    first = a.alloc_extents(40)
    second = a.alloc_extents(40)
    a.free_extents(first)  # free [0,40), keep [40,80), free tail [80,100)
    ext = a.alloc_extents(50)  # must span two runs
    assert sum(l for _, l in ext) == 50
    assert len(ext) == 2


def test_alloc_exhaustion_raises():
    a = BitmapAllocator(0, 10)
    a.alloc_extents(10)
    with pytest.raises(AllocError):
        a.alloc_extents(1)


def test_free_coalesces():
    a = BitmapAllocator(0, 100)
    e1 = a.alloc_extents(30)
    e2 = a.alloc_extents(30)
    a.free_extents(e1)
    a.free_extents(e2)
    # All 100 blocks allocatable as a single run again.
    assert a.alloc_extents(100) == [(0, 100)]


def test_double_free_detected():
    a = BitmapAllocator(0, 100)
    e = a.alloc_extents(10)
    a.free_extents(e)
    with pytest.raises(ValueError):
        a.free_extents(e)


def test_free_out_of_region_rejected():
    a = BitmapAllocator(10, 100)
    with pytest.raises(ValueError):
        a.free_extents([(0, 5)])


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.integers(1, 40), min_size=1, max_size=30))
def test_allocator_conservation_property(ops):
    a = BitmapAllocator(0, 2000)
    live = []
    for n in ops:
        try:
            ext = a.alloc_extents(n)
        except AllocError:
            if live:
                a.free_extents(live.pop(0))
            continue
        assert sum(l for _, l in ext) == n
        live.append(ext)
        # No overlap across all live extents.
        spans = sorted((s, s + l) for e in live for s, l in e)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert a.free_blocks() + sum(l for e in live for _, l in e) == 2000


# ---------------------------------------------------------------- inode
def test_inode_pack_unpack_roundtrip():
    ino = DiskInode(7, mode=S_IFDIR | 0o755, nlink=3, size=12345, mtime=1, ctime=2)
    ino.add_extent(0, 500, 4)
    ino.add_extent(10, 900, 2)
    out = DiskInode.unpack(7, ino.pack())
    assert out.mode == ino.mode and out.size == 12345
    assert out.extents == ino.extents
    assert len(ino.pack()) == INODE_SIZE


def test_inode_map_block_and_holes():
    ino = DiskInode(1)
    ino.add_extent(2, 100, 3)  # logical 2,3,4 -> disk 100,101,102
    assert ino.map_block(0) is None
    assert ino.map_block(2) == 100
    assert ino.map_block(4) == 102
    assert ino.map_block(5) is None


def test_inode_extent_coalescing():
    ino = DiskInode(1)
    ino.add_extent(0, 100, 2)
    ino.add_extent(2, 102, 2)  # adjacent both logically and physically
    assert ino.extents == [(0, 100, 4)]


def test_inode_overlapping_extent_rejected():
    ino = DiskInode(1)
    ino.add_extent(0, 100, 4)
    with pytest.raises(ValueError):
        ino.add_extent(2, 500, 4)


def test_inode_truncate_extents():
    ino = DiskInode(1)
    ino.add_extent(0, 100, 10)
    freed = ino.truncate_extents(4)
    assert freed == [(104, 6)]
    assert ino.extents == [(0, 100, 4)]


# ---------------------------------------------------------------- journal
def test_journal_commit_and_checkpoint():
    env = Environment()
    ssd = NvmeSsd(env)
    j = Journal(env, ssd, first_block=10, nblocks=64)

    def flow():
        tx = j.begin()
        tx.log_block(1000, b"A" * BLOCK)
        tx.log_block(1001, b"B" * BLOCK)
        yield from j.commit(tx)
        # Home blocks not yet written; journal shadow serves reads.
        shadow = yield from j.read_home_block(1000)
        assert shadow == b"A" * BLOCK
        yield from j.checkpoint()
        direct = yield from ssd.read_blocks(1000, 1)
        return direct

    p = env.process(flow())
    assert env.run(until=p) == b"A" * BLOCK
    assert j.commits == 1
    assert j.blocks_journaled == 4  # desc + 2 data + commit


def test_journal_writes_land_in_journal_region():
    env = Environment()
    ssd = NvmeSsd(env)
    j = Journal(env, ssd, first_block=10, nblocks=64)

    def flow():
        tx = j.begin()
        tx.log_block(5000, b"x" * BLOCK)
        yield from j.commit(tx)

    p = env.process(flow())
    env.run(until=p)
    # Journal slots 10, 11, 12 hold desc/data/commit.
    assert ssd.peek(11) == b"x" * BLOCK


def test_journal_rejects_bad_block_size():
    env = Environment()
    ssd = NvmeSsd(env)
    j = Journal(env, ssd, 10, 64)
    tx = j.begin()
    with pytest.raises(ValueError):
        tx.log_block(100, b"short")


def test_journal_auto_checkpoint_at_threshold():
    env = Environment()
    ssd = NvmeSsd(env)
    j = Journal(env, ssd, 10, 512)

    def flow():
        for i in range(70):
            tx = j.begin()
            tx.log_block(2000 + i, bytes([i]) * BLOCK)
            yield from j.commit(tx)

    p = env.process(flow())
    env.run(until=p)
    assert j.checkpoints >= 1
    assert j.pending_blocks() < 70


# ---------------------------------------------------------------- page cache
def make_cache(env, capacity=8):
    written = {}

    def writeback(ino, lpn, data):
        yield env.timeout(1e-6)
        written[(ino, lpn)] = data

    return PageCache(env, capacity, writeback, flush_period=1e-3), written


def test_pagecache_hit_after_put():
    env = Environment()
    cache, _ = make_cache(env)

    def flow():
        yield from cache.put(1, 0, b"page", dirty=False)

    env.run(until=env.process(flow()))
    assert cache.get(1, 0) == b"page"
    assert cache.hits == 1


def test_pagecache_lru_eviction_writes_back_dirty():
    env = Environment()
    cache, written = make_cache(env, capacity=2)

    def flow():
        yield from cache.put(1, 0, b"dirty0", dirty=True)
        yield from cache.put(1, 1, b"clean1", dirty=False)
        yield from cache.put(1, 2, b"new2", dirty=False)  # evicts (1,0)

    env.run(until=env.process(flow()))
    assert written[(1, 0)] == b"dirty0"
    assert cache.get(1, 0) is None
    assert cache.evictions == 1


def test_pagecache_background_flush():
    env = Environment()
    cache, written = make_cache(env)

    def flow():
        yield from cache.put(3, 7, b"later", dirty=True)

    env.run(until=env.process(flow()))
    env.run(until=env.now + 5e-3)
    assert written[(3, 7)] == b"later"
    assert cache.dirty_count() == 0


def test_pagecache_flush_file():
    env = Environment()
    cache, written = make_cache(env)

    def flow():
        yield from cache.put(4, 0, b"a", dirty=True)
        yield from cache.put(5, 0, b"b", dirty=True)
        n = yield from cache.flush_file(4)
        return n

    assert env.run(until=env.process(flow())) == 1
    assert (4, 0) in written and (5, 0) not in written


def test_pagecache_invalidate():
    env = Environment()
    cache, _ = make_cache(env)

    def flow():
        yield from cache.put(6, 0, b"x", dirty=False)
        yield from cache.put(6, 1, b"y", dirty=False)

    env.run(until=env.process(flow()))
    cache.invalidate_page(6, 0)
    assert cache.get(6, 0) is None and cache.get(6, 1) == b"y"
    cache.invalidate_file(6)
    assert cache.get(6, 1) is None
