"""Integration tests for the ext4-like file system on the simulated SSD."""

import pytest

from repro.localfs.ext4sim import Ext4Error, Ext4Fs, ROOT_INO
from repro.params import default_params
from repro.proto.filemsg import Errno
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.nvme_device import NvmeSsd


def build(cache_pages=1024):
    env = Environment()
    p = default_params()
    ssd = NvmeSsd(
        env,
        read_latency=p.ssd_read_latency,
        write_latency=p.ssd_write_latency,
        channels=p.ssd_channels,
        bandwidth=p.ssd_bandwidth,
        max_iops=p.ssd_max_iops,
        capacity_blocks=1 << 20,
    )
    cpu = CpuPool(env, p.host_cores, switch_cost=p.host_switch_cost)
    fs = Ext4Fs(env, ssd, cpu, p, cache_pages=cache_pages, max_inodes=4096)
    return env, fs


def run(env, gen):
    return env.run(until=env.process(gen))


def test_create_lookup_stat():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"file.txt")
        got = yield from fs.lookup(ROOT_INO, b"file.txt")
        st = yield from fs.stat(got.ino)
        return inode.ino, got.ino, st.size

    ino, got, size = run(env, flow())
    assert ino == got and size == 0


def test_duplicate_create_rejected():
    env, fs = build()

    def flow():
        yield from fs.create(ROOT_INO, b"dup")
        try:
            yield from fs.create(ROOT_INO, b"dup")
        except Ext4Error as e:
            return e.errno_code

    assert run(env, flow()) == Errno.EEXIST


def test_write_read_roundtrip_buffered():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"f")
        payload = bytes(range(256)) * 64  # 16 KiB
        yield from fs.write(inode.ino, 0, payload)
        return (yield from fs.read(inode.ino, 0, len(payload)))

    assert run(env, flow()) == bytes(range(256)) * 64


def test_write_read_roundtrip_direct():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"f")
        payload = b"D" * 16384
        yield from fs.write(inode.ino, 0, payload, direct=True)
        return (yield from fs.read(inode.ino, 0, 16384, direct=True))

    assert run(env, flow()) == b"D" * 16384


def test_direct_write_visible_to_buffered_read():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"f")
        yield from fs.write(inode.ino, 0, b"direct!" * 100, direct=True)
        return (yield from fs.read(inode.ino, 0, 700))

    assert run(env, flow()) == b"direct!" * 100


def test_buffered_write_persists_via_fsync():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"f")
        yield from fs.write(inode.ino, 0, b"to-disk" * 1000)
        yield from fs.fsync(inode.ino)
        # Drop the cache and read from the device.
        fs.cache.invalidate_file(inode.ino)
        return (yield from fs.read(inode.ino, 0, 7000))

    assert run(env, flow()) == b"to-disk" * 1000


def test_unaligned_write_rmw():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"f")
        yield from fs.write(inode.ino, 0, b"0" * 10000, direct=True)
        yield from fs.write(inode.ino, 5000, b"MIDDLE", direct=True)
        return (yield from fs.read(inode.ino, 4998, 10, direct=True))

    assert run(env, flow()) == b"00MIDDLE00"


def test_sparse_file_reads_zeros():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"sparse")
        yield from fs.write(inode.ino, 100000, b"tail")
        head = yield from fs.read(inode.ino, 0, 8)
        tail = yield from fs.read(inode.ino, 100000, 4)
        return head, tail

    head, tail = run(env, flow())
    assert head == bytes(8) and tail == b"tail"


def test_mkdir_and_readdir():
    env, fs = build()

    def flow():
        d = yield from fs.mkdir(ROOT_INO, b"dir")
        yield from fs.create(d.ino, b"a")
        yield from fs.create(d.ino, b"b")
        entries = yield from fs.readdir(d.ino)
        return entries

    entries = run(env, flow())
    assert sorted(n for n, _ in entries) == [b"a", b"b"]


def test_unlink_frees_blocks():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"victim")
        yield from fs.write(inode.ino, 0, b"x" * 65536, direct=True)
        before = fs.alloc.free_blocks()
        yield from fs.unlink(ROOT_INO, b"victim")
        after = fs.alloc.free_blocks()
        entries = yield from fs.readdir(ROOT_INO)
        return before, after, entries

    before, after, entries = run(env, flow())
    assert after == before + 16  # 64 KiB = 16 blocks returned
    assert entries == []


def test_unlink_missing_raises():
    env, fs = build()

    def flow():
        try:
            yield from fs.unlink(ROOT_INO, b"ghost")
        except Ext4Error as e:
            return e.errno_code

    assert run(env, flow()) == Errno.ENOENT


def test_rmdir_nonempty_rejected():
    env, fs = build()

    def flow():
        d = yield from fs.mkdir(ROOT_INO, b"d")
        yield from fs.create(d.ino, b"kid")
        try:
            yield from fs.rmdir(ROOT_INO, b"d")
        except Ext4Error as e:
            return e.errno_code

    assert run(env, flow()) == Errno.ENOTEMPTY


def test_rename_moves_entry():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"old")
        yield from fs.write(inode.ino, 0, b"keep me")
        d = yield from fs.mkdir(ROOT_INO, b"sub")
        yield from fs.rename(ROOT_INO, b"old", d.ino, b"new")
        got = yield from fs.lookup(d.ino, b"new")
        data = yield from fs.read(got.ino, 0, 7)
        root = yield from fs.readdir(ROOT_INO)
        return data, [n for n, _ in root]

    data, root_names = run(env, flow())
    assert data == b"keep me"
    assert root_names == [b"sub"]


def test_truncate_shrinks_and_zeroes():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"t")
        yield from fs.write(inode.ino, 0, b"z" * 20000)
        free_before = fs.alloc.free_blocks()
        yield from fs.truncate(inode.ino, 5000)
        free_after = fs.alloc.free_blocks()
        yield from fs.write(inode.ino, 9000, b"end")
        data = yield from fs.read(inode.ino, 4998, 10)
        return free_before, free_after, data

    free_before, free_after, data = run(env, flow())
    assert free_after > free_before
    assert data == b"zz" + bytes(8)


def test_journal_records_metadata_ops():
    env, fs = build()

    def flow():
        yield from fs.create(ROOT_INO, b"a")
        yield from fs.mkdir(ROOT_INO, b"b")

    run(env, flow())
    assert fs.journal.commits >= 2
    assert fs.journal.blocks_journaled > 4


def test_inode_survives_icache_eviction():
    """Inodes written via the journal can be re-read from disk."""
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"persist")
        yield from fs.write(inode.ino, 0, b"data!", direct=True)
        yield from fs.journal.checkpoint()
        fs._icache.pop(inode.ino)  # simulate icache pressure
        st = yield from fs.stat(inode.ino)
        data = yield from fs.read(inode.ino, 0, 5)
        return st.size, data

    size, data = run(env, flow())
    assert size == 5 and data == b"data!"


def test_reads_cheaper_when_cached():
    env, fs = build()

    def flow():
        inode = yield from fs.create(ROOT_INO, b"hot")
        yield from fs.write(inode.ino, 0, b"h" * 4096)
        t0 = env.now
        yield from fs.read(inode.ino, 0, 4096)  # cache hit (just written)
        hit = env.now - t0
        fs.cache.invalidate_file(inode.ino)
        yield from fs.fsync(inode.ino)
        t0 = env.now
        yield from fs.read(inode.ino, 0, 4096)  # must hit the device
        miss = env.now - t0
        return hit, miss

    hit, miss = run(env, flow())
    assert miss > hit * 3


def test_out_of_space():
    env = Environment()
    p = default_params()
    ssd = NvmeSsd(env, capacity_blocks=5200)
    cpu = CpuPool(env, 4)
    fs = Ext4Fs(env, ssd, cpu, p, cache_pages=64, max_inodes=512)

    def flow():
        inode = yield from fs.create(ROOT_INO, b"big")
        try:
            yield from fs.write(inode.ino, 0, b"x" * (4096 * 4000), direct=True)
        except Ext4Error as e:
            return e.errno_code

    assert run(env, flow()) == Errno.ENOSPC
