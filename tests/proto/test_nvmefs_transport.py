"""End-to-end nvme-fs transport tests, including the Figure 4 DMA count."""

import pytest

from repro.params import default_params
from repro.proto.filemsg import Errno, FileAttr, FileOp, FileRequest, FileResponse
from repro.proto.nvme.ini import NvmeFsInitiator
from repro.proto.nvme.sqe import ReqType
from repro.proto.nvme.tgt import NvmeFsTarget
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink


def memory_backend(store: dict):
    """A 'virtual client' backend answering from DPU memory (paper §4.1)."""

    def backend(sqe, request: FileRequest, payload: bytes):
        if request.op == FileOp.WRITE:
            store[(request.ino, request.offset)] = payload
            yield from ()
            return FileResponse(size=len(payload)), b""
        if request.op == FileOp.READ:
            data = store.get((request.ino, request.offset), b"\0" * request.length)
            yield from ()
            return FileResponse(size=len(data)), data
        if request.op == FileOp.STAT:
            yield from ()
            return FileResponse(attr=FileAttr(ino=request.ino, size=123)), b""
        yield from ()
        return FileResponse(status=Errno.EINVAL), b""

    return backend


def build(num_queues=2, params=None):
    env = Environment()
    p = params or default_params()
    arena = MemoryArena(64 * 1024 * 1024)
    link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
    host_cpu = CpuPool(env, p.host_cores, switch_cost=p.host_switch_cost)
    dpu_cpu = CpuPool(env, p.dpu_cores, perf=p.dpu_perf, switch_cost=p.dpu_switch_cost)
    ini = NvmeFsInitiator(env, arena, link, host_cpu, p, num_queues=num_queues)
    store: dict = {}
    tgt = NvmeFsTarget(env, link, dpu_cpu, p, ini.queues, memory_backend(store))
    return env, link, ini, tgt, store


def test_write_then_read_roundtrip():
    env, _, ini, _, store = build()
    out = {}

    def flow():
        data = bytes(range(256)) * 32  # 8 KiB
        resp, _ = yield from ini.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=len(data)),
            write_payload=data,
        )
        assert resp.ok and resp.size == 8192
        resp, payload = yield from ini.submit(
            FileRequest(FileOp.READ, ino=1, offset=0, length=len(data)),
            read_len=len(data),
        )
        out["payload"] = payload

    p = env.process(flow())
    env.run(until=p)
    assert out["payload"] == bytes(range(256)) * 32
    assert store[(1, 0)] == out["payload"]


def test_8k_write_takes_exactly_4_dmas():
    """Paper Figure 4: SQE fetch + header read + data read + CQE write."""
    env, link, ini, _, _ = build()

    def flow():
        snap = link.stats.snapshot()
        yield from ini.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=8192),
            write_payload=b"z" * 8192,
        )
        d = link.stats.delta(snap)
        assert d.ops() == 4, f"expected 4 DMAs, saw {d.ops()}: {d.by_tag}"
        # Control TLPs (doorbell, interrupt) are not DMAs: exactly one each.
        assert d.doorbells == 1 and d.interrupts == 1
        dmas = {k: v for k, v in d.by_tag.items() if k not in ("sq-doorbell", "cq-irq")}
        assert dmas == {
            "sqe-fetch": 1,
            "cmd-header": 1,
            "write-data": 1,
            "cqe-write": 1,
        }

    p = env.process(flow())
    env.run(until=p)


def test_8k_read_takes_exactly_4_dmas():
    env, link, ini, _, _ = build()

    def flow():
        yield from ini.submit(
            FileRequest(FileOp.WRITE, ino=2, offset=0, length=8192),
            write_payload=b"q" * 8192,
        )
        snap = link.stats.snapshot()
        yield from ini.submit(
            FileRequest(FileOp.READ, ino=2, offset=0, length=8192), read_len=8192
        )
        d = link.stats.delta(snap)
        assert d.ops() == 4, f"expected 4 DMAs, saw {d.ops()}: {d.by_tag}"
        assert d.doorbells == 1 and d.interrupts == 1
        dmas = {k: v for k, v in d.by_tag.items() if k not in ("sq-doorbell", "cq-irq")}
        assert dmas == {
            "sqe-fetch": 1,
            "cmd-header": 1,
            "read-data": 1,
            "cqe-write": 1,
        }

    p = env.process(flow())
    env.run(until=p)


def test_metadata_op_returns_attr_via_response_header():
    env, _, ini, _, _ = build()
    out = {}

    def flow():
        resp, _ = yield from ini.submit(FileRequest(FileOp.STAT, ino=9))
        out["attr"] = resp.attr

    p = env.process(flow())
    env.run(until=p)
    assert out["attr"].ino == 9
    assert out["attr"].size == 123


def test_error_status_propagates():
    env, _, ini, _, _ = build()
    out = {}

    def flow():
        resp, _ = yield from ini.submit(FileRequest(FileOp.MKDIR, ino=1, name=b"x"))
        out["status"] = resp.status

    p = env.process(flow())
    env.run(until=p)
    assert out["status"] == Errno.EINVAL


def test_multi_queue_spreads_submitters():
    env, _, ini, tgt, _ = build(num_queues=4)
    done = []

    def worker(i):
        resp, _ = yield from ini.submit(
            FileRequest(FileOp.WRITE, ino=i, offset=0, length=4096),
            write_payload=b"w" * 4096,
            submitter_id=i,
        )
        assert resp.ok
        done.append(i)

    for i in range(8):
        env.process(worker(i))
    env.run()
    assert sorted(done) == list(range(8))
    assert tgt.commands_processed == 8
    # Each of the 4 queues saw 2 submissions.
    assert [qp.submitted for qp in ini.queues] == [2, 2, 2, 2]


def test_concurrent_pipelining_beats_serial_on_one_queue():
    """Queue-depth pipelining: 16 concurrent ops complete in far less than
    16x the single-op latency."""
    env1, _, ini1, _, _ = build(num_queues=1)

    def one(ini, env, results):
        def flow():
            t0 = env.now
            yield from ini.submit(
                FileRequest(FileOp.WRITE, ino=1, offset=0, length=4096),
                write_payload=b"a" * 4096,
            )
            results.append(env.now - t0)

        return flow

    r1 = []
    p = env1.process(one(ini1, env1, r1)())
    env1.run(until=p)
    single_lat = r1[0]

    env2, _, ini2, _, _ = build(num_queues=1)
    r2 = []
    for i in range(16):
        env2.process(one(ini2, env2, r2)())
    env2.run()
    assert len(r2) == 16
    assert env2.now < 16 * single_lat * 0.7


def test_zero_length_ops():
    env, _, ini, _, _ = build()
    out = {}

    def flow():
        resp, payload = yield from ini.submit(
            FileRequest(FileOp.READ, ino=1, offset=0, length=0), read_len=0
        )
        out["resp"] = resp
        out["payload"] = payload

    p = env.process(flow())
    env.run(until=p)
    assert out["payload"] == b""


def test_in_flight_tracking():
    env, _, ini, _, _ = build()
    assert ini.in_flight() == 0

    def flow():
        yield from ini.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=64), write_payload=b"x" * 64
        )

    p = env.process(flow())
    env.run(until=p)
    assert ini.in_flight() == 0


def test_dispatch_bit_reaches_backend():
    env = Environment()
    p = default_params()
    arena = MemoryArena(16 * 1024 * 1024)
    link = PcieLink(env, arena)
    host_cpu = CpuPool(env, 4)
    dpu_cpu = CpuPool(env, 4)
    seen = []

    def backend(sqe, request, payload):
        seen.append(sqe.req_type)
        yield from ()
        return FileResponse(), b""

    ini = NvmeFsInitiator(env, arena, link, host_cpu, p, num_queues=1)
    NvmeFsTarget(env, link, dpu_cpu, p, ini.queues, backend)

    def flow():
        yield from ini.submit(
            FileRequest(FileOp.STAT, ino=1), req_type=ReqType.DISTRIBUTED
        )
        yield from ini.submit(
            FileRequest(FileOp.STAT, ino=1), req_type=ReqType.STANDALONE
        )

    pr = env.process(flow())
    env.run(until=pr)
    assert seen == [ReqType.DISTRIBUTED, ReqType.STANDALONE]
