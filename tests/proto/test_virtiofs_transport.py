"""End-to-end virtio-fs/DPFS tests, including the Figure 2(b) 11-DMA count."""

import pytest

from repro.params import default_params
from repro.proto.filemsg import Errno, FileAttr, FileOp, FileRequest, FileResponse
from repro.proto.virtio.fuse import (
    FUSE_MAX_TRANSFER,
    FuseInHeader,
    FuseOutHeader,
    FuseReadIn,
    FuseWriteIn,
)
from repro.proto.virtio.virtiofs import DpfsHal, VirtioFsHost
from repro.proto.virtio.vring import Descriptor, VRING_DESC_F_NEXT, VRING_DESC_F_WRITE, VRing
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink


def memory_backend(store: dict):
    def backend(_sqe, request: FileRequest, payload: bytes):
        if request.op == FileOp.WRITE:
            store[(request.ino, request.offset)] = payload
            yield from ()
            return FileResponse(size=len(payload)), b""
        if request.op == FileOp.READ:
            data = store.get((request.ino, request.offset), b"\0" * request.length)
            yield from ()
            return FileResponse(size=len(data)), data
        if request.op == FileOp.STAT:
            yield from ()
            return FileResponse(attr=FileAttr(ino=request.ino, size=5)), b""
        yield from ()
        return FileResponse(status=Errno.ENOENT), b""

    return backend


def build(params=None):
    env = Environment()
    p = params or default_params()
    arena = MemoryArena(64 * 1024 * 1024)
    link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
    host_cpu = CpuPool(env, p.host_cores, switch_cost=p.host_switch_cost)
    dpu_cpu = CpuPool(env, p.dpu_cores, perf=p.dpu_perf, switch_cost=p.dpu_switch_cost)
    host = VirtioFsHost(env, arena, link, host_cpu, p)
    store: dict = {}
    hal = DpfsHal(env, link, dpu_cpu, p, host.rings, memory_backend(store))
    return env, link, host, hal, store


# ---------------------------------------------------------------- FUSE codecs
def test_fuse_in_header_roundtrip():
    h = FuseInHeader(100, 16, 7, 42, 1000, 1000, 4321)
    assert FuseInHeader.unpack(h.pack()) == h
    assert len(h.pack()) == 40


def test_fuse_out_header_roundtrip():
    h = FuseOutHeader(24, -2, 9)
    assert FuseOutHeader.unpack(h.pack()) == h
    assert len(h.pack()) == 16


def test_fuse_read_write_bodies_roundtrip():
    r = FuseReadIn(3, 4096, 8192)
    assert FuseReadIn.unpack(r.pack()) == r
    w = FuseWriteIn(3, 0, 4096)
    assert FuseWriteIn.unpack(w.pack()) == w


# ---------------------------------------------------------------- vring
def test_vring_descriptor_roundtrip():
    d = Descriptor(0x1000, 4096, VRING_DESC_F_NEXT | VRING_DESC_F_WRITE, 7)
    assert Descriptor.unpack(d.pack()) == d
    assert d.has_next and d.device_writable and not d.indirect


def test_vring_alloc_free_descriptors():
    env = Environment()
    arena = MemoryArena(1024 * 1024)
    ring = VRing(env, arena, 8)
    ids = ring.alloc_descs(8)
    assert len(set(ids)) == 8
    with pytest.raises(RuntimeError):
        ring.alloc_descs(1)
    ring.free_descs(ids)
    assert len(ring.alloc_descs(8)) == 8


def test_vring_publish_updates_avail_ring():
    env = Environment()
    arena = MemoryArena(1024 * 1024)
    ring = VRing(env, arena, 8)
    ring.publish(5)
    assert arena.read_u16(ring.avail_idx_addr) == 1
    assert arena.read_u16(ring.avail_ring_addr(0)) == 5


# ---------------------------------------------------------------- transport
def test_write_then_read_roundtrip():
    env, _, host, _, store = build()
    out = {}

    def flow():
        data = bytes(range(256)) * 32  # 8 KiB
        resp, _ = yield from host.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=len(data)),
            write_payload=data,
        )
        assert resp.ok
        resp, payload = yield from host.submit(
            FileRequest(FileOp.READ, ino=1, offset=0, length=len(data)),
            read_len=len(data),
        )
        out["payload"] = payload

    p = env.process(flow())
    env.run(until=p)
    assert out["payload"] == bytes(range(256)) * 32


def test_8k_write_takes_exactly_11_dmas():
    """Paper Figure 2(b): the virtio-fs walk costs 11 DMA operations."""
    env, link, host, _, _ = build()

    def flow():
        snap = link.stats.snapshot()
        yield from host.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=8192),
            write_payload=b"z" * 8192,
        )
        d = link.stats.delta(snap)
        assert d.ops() == 11, f"expected 11 DMAs, saw {d.ops()}: {d.by_tag}"
        # chain: cmd desc + 2 data descs + out desc = 4 descriptor reads
        assert d.by_tag["desc-read"] == 4
        assert d.by_tag["avail-idx"] >= 1
        assert d.by_tag["write-data"] == 1
        assert d.by_tag["used-entry"] == 1
        assert d.by_tag["used-idx"] == 1

    p = env.process(flow())
    env.run(until=p)


def test_8k_read_takes_exactly_11_dmas():
    env, link, host, _, _ = build()

    def flow():
        yield from host.submit(
            FileRequest(FileOp.WRITE, ino=3, offset=0, length=8192),
            write_payload=b"r" * 8192,
        )
        snap = link.stats.snapshot()
        yield from host.submit(
            FileRequest(FileOp.READ, ino=3, offset=0, length=8192), read_len=8192
        )
        d = link.stats.delta(snap)
        assert d.ops() == 11, f"expected 11 DMAs, saw {d.ops()}: {d.by_tag}"

    p = env.process(flow())
    env.run(until=p)


def test_virtio_uses_more_dmas_than_nvmefs():
    """The core M2 claim: 2-3x more DMA operations than nvme-fs."""
    env, link, host, _, _ = build()

    def flow():
        snap = link.stats.snapshot()
        yield from host.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=8192),
            write_payload=b"z" * 8192,
        )
        return link.stats.delta(snap).ops()

    p = env.process(flow())
    virtio_dmas = env.run(until=p)
    assert virtio_dmas / 4 >= 2.0  # vs nvme-fs's 4


def test_large_transfer_uses_indirect_descriptors():
    env, link, host, _, _ = build()

    def flow():
        snap = link.stats.snapshot()
        yield from host.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=65536),
            write_payload=b"L" * 65536,
        )
        d = link.stats.delta(snap)
        # 16 data pages would be 16+ descriptor reads if direct; indirect
        # keeps the walk bounded.
        assert d.by_tag.get("indirect-table", 0) == 1
        assert d.by_tag["desc-read"] == 1

    p = env.process(flow())
    env.run(until=p)


def test_transfer_above_fuse_max_rejected():
    env, _, host, _, _ = build()

    def flow():
        yield from host.submit(
            FileRequest(FileOp.WRITE, ino=1, offset=0, length=FUSE_MAX_TRANSFER + 1),
            write_payload=b"x" * (FUSE_MAX_TRANSFER + 1),
        )

    p = env.process(flow())
    with pytest.raises(ValueError):
        env.run(until=p)


def test_metadata_op_roundtrip():
    env, _, host, _, _ = build()
    out = {}

    def flow():
        resp, _ = yield from host.submit(FileRequest(FileOp.STAT, ino=11))
        out["attr"] = resp.attr

    p = env.process(flow())
    env.run(until=p)
    assert out["attr"].ino == 11


def test_error_propagates_through_fuse():
    env, _, host, _, _ = build()
    out = {}

    def flow():
        resp, _ = yield from host.submit(FileRequest(FileOp.UNLINK, ino=1, name=b"no"))
        out["status"] = resp.status

    p = env.process(flow())
    env.run(until=p)
    assert out["status"] == Errno.ENOENT


def test_single_hal_thread_bounds_concurrency():
    """DPFS's single HAL thread caps in-flight chains at its pipeline depth:
    4x the pipeline's worth of requests takes ~4x as long, unlike the
    multi-queue nvme-fs path."""

    def run_batch(n):
        env, _, host, hal, _ = build()
        done = []

        def worker(i):
            yield from host.submit(
                FileRequest(FileOp.WRITE, ino=i, offset=0, length=4096),
                write_payload=b"s" * 4096,
            )
            done.append(i)

        for i in range(n):
            env.process(worker(i))
        env.run()
        assert hal.requests_processed == n
        return env.now

    p = default_params()
    t_small = run_batch(p.virtio_hal_pipeline)
    t_large = run_batch(4 * p.virtio_hal_pipeline)
    assert t_large > t_small * 2.0


def test_nvmefs_outperforms_virtio_at_high_concurrency():
    """Figure 6's headline: 2-3x IOPS advantage for nvme-fs at 32 threads."""
    from repro.proto.nvme.ini import NvmeFsInitiator
    from repro.proto.nvme.tgt import NvmeFsTarget

    def run_virtio(n):
        env, _, host, _, _ = build()
        done = []

        def worker(i):
            for _ in range(4):
                yield from host.submit(
                    FileRequest(FileOp.WRITE, ino=i, offset=0, length=4096),
                    write_payload=b"v" * 4096,
                )
            done.append(i)

        for i in range(n):
            env.process(worker(i))
        env.run()
        return (n * 4) / env.now

    def run_nvme(n):
        env = Environment()
        p = default_params()
        arena = MemoryArena(64 * 1024 * 1024)
        link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
        host_cpu = CpuPool(env, p.host_cores, switch_cost=p.host_switch_cost)
        dpu_cpu = CpuPool(env, p.dpu_cores, perf=p.dpu_perf, switch_cost=p.dpu_switch_cost)
        ini = NvmeFsInitiator(env, arena, link, host_cpu, p)
        NvmeFsTarget(env, link, dpu_cpu, p, ini.queues, memory_backend({}))
        done = []

        def worker(i):
            for _ in range(4):
                yield from ini.submit(
                    FileRequest(FileOp.WRITE, ino=i, offset=0, length=4096),
                    write_payload=b"n" * 4096,
                    submitter_id=i,
                )
            done.append(i)

        for i in range(n):
            env.process(worker(i))
        env.run()
        return (n * 4) / env.now

    virtio_iops = run_virtio(32)
    nvme_iops = run_nvme(32)
    assert nvme_iops / virtio_iops >= 2.0
