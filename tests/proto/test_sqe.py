"""Bit-level tests for the nvme-fs SQE/CQE codec (paper §3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.proto.nvme.sqe import CQE_SIZE, Cqe, NVMEFS_OPCODE, ReqType, SQE_SIZE, Sqe


def test_opcode_is_0xa3():
    assert NVMEFS_OPCODE == 0xA3


def test_opcode_bit_dissection_matches_paper():
    """§3.2: low two bits 11b (bidirectional), bits 2-6 01000b (function),
    high bit 1b (vendor custom)."""
    sqe = Sqe(cid=0)
    assert sqe.is_bidirectional
    assert sqe.function_code == 0b01000
    assert sqe.is_vendor_custom
    assert NVMEFS_OPCODE & 0b11 == 0b11
    assert (NVMEFS_OPCODE >> 2) & 0b11111 == 0b01000
    assert NVMEFS_OPCODE >> 7 == 1


def test_sqe_is_64_bytes():
    sqe = Sqe(cid=1, prp_write1=0x1000, write_len=8192, wh_len=56, rh_len=512)
    assert len(sqe.pack()) == SQE_SIZE == 64


def test_sqe_roundtrip():
    sqe = Sqe(
        cid=0x1234,
        req_type=ReqType.DISTRIBUTED,
        prp_write1=0xDEAD000,
        prp_write2=0xDEAE000,
        prp_read1=0xBEEF000,
        prp_read2=0,
        write_len=8192,
        read_len=4096,
        wh_len=56,
        rh_len=512,
    )
    assert Sqe.unpack(sqe.pack()) == sqe


def test_sqe_dispatch_bit_in_dword0_bit10():
    raw_standalone = Sqe(cid=0, req_type=ReqType.STANDALONE).pack()
    raw_distributed = Sqe(cid=0, req_type=ReqType.DISTRIBUTED).pack()
    dw0_s = int.from_bytes(raw_standalone[:4], "little")
    dw0_d = int.from_bytes(raw_distributed[:4], "little")
    assert (dw0_s >> 10) & 1 == 0
    assert (dw0_d >> 10) & 1 == 1


def test_sqe_psdt_bits_14_15():
    raw = Sqe(cid=0, sgl_write=True, sgl_read=False).pack()
    dw0 = int.from_bytes(raw[:4], "little")
    assert (dw0 >> 14) & 1 == 1
    assert (dw0 >> 15) & 1 == 0
    raw = Sqe(cid=0, sgl_write=False, sgl_read=True).pack()
    dw0 = int.from_bytes(raw[:4], "little")
    assert (dw0 >> 14) & 1 == 0
    assert (dw0 >> 15) & 1 == 1


def test_sqe_default_prp_mode():
    """PRP is the default: both PSDT bits zero."""
    raw = Sqe(cid=0).pack()
    dw0 = int.from_bytes(raw[:4], "little")
    assert (dw0 >> 14) & 0b11 == 0


def test_sqe_cid_in_dword0_high_half():
    raw = Sqe(cid=0xABCD).pack()
    dw0 = int.from_bytes(raw[:4], "little")
    assert (dw0 >> 16) & 0xFFFF == 0xABCD


def test_sqe_header_lens_in_dword13():
    raw = Sqe(cid=0, rh_len=0x0102, wh_len=0x0304).pack()
    dw13 = int.from_bytes(raw[52:56], "little")
    assert dw13 & 0xFFFF == 0x0102  # RH_len low half
    assert (dw13 >> 16) & 0xFFFF == 0x0304  # WH_len high half


def test_sqe_prp_fields_in_dwords_2_to_9():
    raw = Sqe(
        cid=0, prp_write1=0x1111, prp_write2=0x2222, prp_read1=0x3333, prp_read2=0x4444
    ).pack()
    assert int.from_bytes(raw[8:16], "little") == 0x1111  # dword2-3
    assert int.from_bytes(raw[16:24], "little") == 0x2222  # dword4-5
    assert int.from_bytes(raw[24:32], "little") == 0x3333  # dword6-7
    assert int.from_bytes(raw[32:40], "little") == 0x4444  # dword8-9


def test_sqe_lengths_in_dwords_10_11():
    raw = Sqe(cid=0, write_len=8192, read_len=4096).pack()
    assert int.from_bytes(raw[40:44], "little") == 8192  # dword10
    assert int.from_bytes(raw[44:48], "little") == 4096  # dword11


def test_sqe_cid_range_checked():
    with pytest.raises(ValueError):
        Sqe(cid=0x10000).pack()


def test_sqe_header_len_range_checked():
    with pytest.raises(ValueError):
        Sqe(cid=0, wh_len=0x10000).pack()


def test_sqe_bad_size_rejected():
    with pytest.raises(ValueError):
        Sqe.unpack(b"\0" * 63)


def test_cqe_roundtrip():
    cqe = Cqe(cid=77, status=5, result=8192, sq_head=3, sq_id=1, phase=1)
    assert Cqe.unpack(cqe.pack()) == cqe
    assert len(cqe.pack()) == CQE_SIZE == 16


def test_cqe_bad_size_rejected():
    with pytest.raises(ValueError):
        Cqe.unpack(b"\0" * 8)


@given(
    cid=st.integers(0, 0xFFFF),
    req_type=st.integers(0, 1),
    pw1=st.integers(0, 2**64 - 1),
    pr1=st.integers(0, 2**64 - 1),
    wlen=st.integers(0, 2**32 - 1),
    rlen=st.integers(0, 2**32 - 1),
    whl=st.integers(0, 0xFFFF),
    rhl=st.integers(0, 0xFFFF),
    sglw=st.booleans(),
    sglr=st.booleans(),
)
def test_sqe_roundtrip_property(cid, req_type, pw1, pr1, wlen, rlen, whl, rhl, sglw, sglr):
    sqe = Sqe(
        cid=cid,
        req_type=req_type,
        prp_write1=pw1,
        prp_read1=pr1,
        write_len=wlen,
        read_len=rlen,
        wh_len=whl,
        rh_len=rhl,
        sgl_write=sglw,
        sgl_read=sglr,
    )
    assert Sqe.unpack(sqe.pack()) == sqe


@given(
    cid=st.integers(0, 0xFFFF),
    status=st.integers(0, 0x7FFF),
    result=st.integers(0, 2**32 - 1),
    phase=st.integers(0, 1),
)
def test_cqe_roundtrip_property(cid, status, result, phase):
    cqe = Cqe(cid=cid, status=status, result=result, phase=phase)
    assert Cqe.unpack(cqe.pack()) == cqe
