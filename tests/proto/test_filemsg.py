"""Codec tests for the native file-semantic messages."""

import pytest
from hypothesis import given, strategies as st

from repro.proto.filemsg import (
    Errno,
    FileAttr,
    FileOp,
    FileRequest,
    FileResponse,
    pack_dirents,
    unpack_dirents,
)


def test_request_roundtrip_basic():
    req = FileRequest(FileOp.WRITE, ino=42, offset=8192, length=4096, flags=3)
    assert FileRequest.unpack(req.pack()) == req


def test_request_roundtrip_with_names():
    req = FileRequest(
        FileOp.RENAME, ino=1, aux_ino=2, name=b"old.txt", extra=b"new.txt"
    )
    out = FileRequest.unpack(req.pack())
    assert out.name == b"old.txt"
    assert out.extra == b"new.txt"
    assert out.aux_ino == 2


def test_request_name_limit_enforced():
    req = FileRequest(FileOp.CREATE, name=b"x" * 1025)
    with pytest.raises(ValueError):
        req.pack()


def test_request_wire_size_matches_pack():
    req = FileRequest(FileOp.LOOKUP, ino=7, name=b"etc")
    assert req.wire_size() == len(req.pack())


def test_response_roundtrip_with_attr():
    attr = FileAttr(ino=9, size=1234, mode=0o100644, mtime=777)
    resp = FileResponse(Errno.OK, aux=5, size=1234, attr=attr, data=b"extra")
    out = FileResponse.unpack(resp.pack())
    assert out.attr == attr
    assert out.data == b"extra"
    assert out.ok


def test_response_error_status():
    resp = FileResponse(Errno.ENOENT)
    out = FileResponse.unpack(resp.pack())
    assert out.status == Errno.ENOENT
    assert not out.ok


def test_attr_pack_size_is_64():
    assert len(FileAttr(ino=1).pack()) == 64


def test_attr_is_dir():
    assert FileAttr(ino=1, mode=0o040755).is_dir
    assert not FileAttr(ino=1, mode=0o100644).is_dir


def test_dirents_roundtrip():
    entries = [(b"a.txt", 10, False), (b"subdir", 11, True), (b"b", 12, False)]
    assert unpack_dirents(pack_dirents(entries)) == entries


def test_dirents_empty():
    assert unpack_dirents(pack_dirents([])) == []


@given(
    op=st.sampled_from(list(FileOp)),
    ino=st.integers(0, 2**64 - 1),
    offset=st.integers(0, 2**64 - 1),
    length=st.integers(0, 2**64 - 1),
    flags=st.integers(0, 2**16 - 1),
    name=st.binary(max_size=64),
    extra=st.binary(max_size=64),
)
def test_request_roundtrip_property(op, ino, offset, length, flags, name, extra):
    req = FileRequest(op, ino=ino, offset=offset, length=length, flags=flags, name=name, extra=extra)
    assert FileRequest.unpack(req.pack()) == req


@given(
    status=st.sampled_from(list(Errno)),
    aux=st.integers(0, 2**32 - 1),
    size=st.integers(0, 2**64 - 1),
    data=st.binary(max_size=128),
)
def test_response_roundtrip_property(status, aux, size, data):
    resp = FileResponse(status, aux, size, None, data)
    assert FileResponse.unpack(resp.pack()) == resp
