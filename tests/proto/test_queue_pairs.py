"""NvmeQueuePair bookkeeping and big-directory protocol edge cases."""

import pytest

from repro.core import build_dpc_system
from repro.proto.nvme.queues import NvmeQueuePair
from repro.proto.nvme.sqe import CQE_SIZE, SQE_SIZE
from repro.sim.core import Environment
from repro.sim.memory import MemoryArena


def test_queue_pair_ring_addressing_wraps():
    env = Environment()
    arena = MemoryArena(1 << 20)
    qp = NvmeQueuePair(env, arena, qid=3, depth=8)
    assert qp.sqe_addr(0) == qp.sq_base
    assert qp.sqe_addr(8) == qp.sq_base  # wraps at depth
    assert qp.sqe_addr(9) == qp.sq_base + SQE_SIZE
    assert qp.cqe_addr(17) == qp.cq_base + CQE_SIZE


def test_queue_pair_cid_allocation_unique_among_pending():
    env = Environment()
    arena = MemoryArena(1 << 20)
    qp = NvmeQueuePair(env, arena, qid=0, depth=128)
    cids = set()
    for _ in range(128):
        cid = qp.alloc_cid()
        qp.pending[cid] = object()
        assert cid not in cids
        cids.add(cid)


def test_queue_pair_rejects_zero_depth():
    env = Environment()
    arena = MemoryArena(1 << 20)
    with pytest.raises(ValueError):
        NvmeQueuePair(env, arena, qid=0, depth=0)


def test_readdir_pagination_large_directory():
    """A 200-entry directory streams through the 2 KiB header region."""
    sys = build_dpc_system()

    def app():
        yield from sys.vfs.mkdir("/kvfs/big")
        from repro.host.vfs import O_CREAT

        for i in range(200):
            f = yield from sys.vfs.open(f"/kvfs/big/entry-{i:04d}", O_CREAT)
            yield from sys.vfs.close(f)
        return (yield from sys.vfs.readdir("/kvfs/big"))

    entries = sys.run_until(app())
    assert len(entries) == 200
    assert [n for n, _ in entries] == sorted(n for n, _ in entries)


def test_readdir_long_names_fit_header_region():
    sys = build_dpc_system()

    def app():
        from repro.host.vfs import O_CREAT

        yield from sys.vfs.mkdir("/kvfs/longnames")
        names = ["x" * 300, "y" * 500, "z" * 900]
        for n in names:
            f = yield from sys.vfs.open(f"/kvfs/longnames/{n}", O_CREAT)
            yield from sys.vfs.close(f)
        return (yield from sys.vfs.readdir("/kvfs/longnames"))

    entries = sys.run_until(app())
    assert sorted(len(n) for n, _ in entries) == [300, 500, 900]
