"""Ring wrap-around, out-of-order completion, and batching-path tests.

These drive more commands through one queue pair than its depth, with
backends that complete out of submission order, to prove the monotonic
cursor + modulo addressing scheme and the coalesced completion path never
lose or cross-deliver a command.
"""

import random

from repro.params import default_params
from repro.proto.filemsg import FileOp, FileRequest, FileResponse
from repro.proto.nvme.ini import NvmeFsInitiator
from repro.proto.nvme.tgt import NvmeFsTarget
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink


def variable_delay_backend(env, rng):
    """Echo backend whose service time scrambles completion order."""

    def backend(sqe, request: FileRequest, payload: bytes):
        yield env.timeout(rng.uniform(0.5e-6, 30e-6))
        return FileResponse(size=request.offset), b""

    return backend


def build(num_queues=1, depth=None, params=None, seed=7):
    env = Environment()
    p = params or default_params()
    if depth is not None:
        p = p.with_overrides(nvme_queue_depth=depth)
    arena = MemoryArena(64 * 1024 * 1024)
    link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
    host_cpu = CpuPool(env, p.host_cores, switch_cost=p.host_switch_cost)
    dpu_cpu = CpuPool(env, p.dpu_cores, perf=p.dpu_perf, switch_cost=p.dpu_switch_cost)
    ini = NvmeFsInitiator(env, arena, link, host_cpu, p, num_queues=num_queues)
    rng = random.Random(seed)
    tgt = NvmeFsTarget(env, link, dpu_cpu, p, ini.queues, variable_delay_backend(env, rng))
    return env, link, ini, tgt


def test_wraparound_beyond_depth_with_ooo_completions():
    """> depth commands through one queue pair, completing out of order:
    every submitter gets *its own* response back."""
    env, _, ini, tgt = build(num_queues=1)
    depth = ini.queues[0].depth
    total = depth * 2 + depth // 2  # 320 commands for depth 128
    results = {}

    def worker(i):
        resp, _ = yield from ini.submit(
            FileRequest(FileOp.STAT, ino=1, offset=i), submitter_id=0
        )
        results[i] = resp.size

    for i in range(total):
        env.process(worker(i))
    env.run()
    assert len(results) == total
    # The echo backend reflects each command's offset: response mixups
    # (wrong CQE delivered to a waiter) would break this.
    assert all(results[i] == i for i in range(total))
    assert tgt.commands_processed == total
    qp = ini.queues[0]
    assert qp.submitted == total and qp.completed == total
    assert len(qp.pending) == 0


def test_wraparound_with_tiny_ring():
    """A depth-4 ring wraps dozens of times; burst fetches and coalesced
    CQE writes must split correctly at every wrap boundary."""
    env, link, ini, tgt = build(num_queues=1, depth=4)
    total = 50
    results = {}

    def worker(i):
        resp, _ = yield from ini.submit(
            FileRequest(FileOp.STAT, ino=1, offset=i), submitter_id=0
        )
        results[i] = resp.size

    for i in range(total):
        env.process(worker(i))
    env.run()
    assert all(results[i] == i for i in range(total))
    assert tgt.commands_processed == total
    # No burst may span the wrap boundary: with depth 4 every sqe-fetch and
    # cqe-write burst carries at most 4 entries.
    for tag in ("sqe-fetch", "cqe-write"):
        bursts, entries = link.stats.burst_by_tag.get(tag, [0, 0])
        if bursts:
            assert entries <= bursts * 4


def test_submit_many_single_doorbell():
    """A submit_many batch on an idle queue costs exactly one doorbell."""
    env, link, ini, _ = build(num_queues=1)
    out = {}

    def flow():
        snap = link.stats.snapshot()
        batch = [
            (FileRequest(FileOp.STAT, ino=1, offset=i), b"", 0) for i in range(16)
        ]
        results = yield from ini.submit_many(batch, submitter_id=0)
        d = link.stats.delta(snap)
        out["doorbells"] = d.doorbells
        out["sqe_fetches"] = d.by_tag.get("sqe-fetch", 0)
        out["sizes"] = [resp.size for resp, _ in results]

    p = env.process(flow())
    env.run(until=p)
    assert out["sizes"] == list(range(16))
    assert out["doorbells"] == 1
    # One doorbell -> the target pulled the whole batch in one burst fetch.
    assert out["sqe_fetches"] == 1


def test_submit_many_larger_than_queue_depth():
    """Batches beyond the ring size chunk without deadlocking."""
    env, _, ini, tgt = build(num_queues=1, depth=8)
    out = {}

    def flow():
        batch = [
            (FileRequest(FileOp.STAT, ino=1, offset=i), b"", 0) for i in range(30)
        ]
        results = yield from ini.submit_many(batch, submitter_id=0)
        out["sizes"] = [resp.size for resp, _ in results]

    p = env.process(flow())
    env.run(until=p)
    assert out["sizes"] == list(range(30))
    assert tgt.commands_processed == 30


def test_coalescing_disabled_still_correct():
    """cqe_coalesce_us=0 / doorbell_combine_us=0 degenerate to the
    uncoalesced per-command path."""
    p = default_params().with_overrides(doorbell_combine_us=0.0, cqe_coalesce_us=0.0)
    env, link, ini, tgt = build(num_queues=1, params=p)
    total = 40
    results = {}

    def worker(i):
        resp, _ = yield from ini.submit(
            FileRequest(FileOp.STAT, ino=1, offset=i), submitter_id=0
        )
        results[i] = resp.size

    for i in range(total):
        env.process(worker(i))
    env.run()
    assert all(results[i] == i for i in range(total))
    # Every completion flushed alone: one interrupt per command.
    assert link.stats.interrupts == total


def test_interrupt_coalescing_under_load():
    """At sustained depth, completions batch: fewer interrupts than ops."""
    env, link, ini, tgt = build(num_queues=1)
    total = 200

    def worker(i):
        yield from ini.submit(
            FileRequest(FileOp.STAT, ino=1, offset=i), submitter_id=0
        )

    for i in range(total):
        env.process(worker(i))
    env.run()
    assert tgt.commands_processed == total
    assert link.stats.interrupts < total
    assert link.stats.doorbells < total
