"""Integration tests: host data plane + DPU control plane working together."""

import pytest

from repro.cache.control import CacheControlPlane
from repro.cache.hostplane import HostCachePlane
from repro.cache.layout import CacheLayout, ST_CLEAN, ST_DIRTY
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink
from repro.sim.resources import Store


class FakeBackend:
    """Records writebacks and serves fetches from a dict."""

    def __init__(self, env):
        self.env = env
        self.store: dict[tuple[int, int], bytes] = {}
        self.writebacks = 0
        self.fetches = 0

    def writeback(self, inode, lpn, data):
        yield self.env.timeout(5e-6)
        self.store[(inode, lpn)] = data
        self.writebacks += 1

    def fetch(self, inode, lpn):
        yield self.env.timeout(5e-6)
        self.fetches += 1
        data = self.store.get((inode, lpn))
        return None if data is None else [(lpn, data)]


def build(pages=64, buckets=8, prefetch=True, params=None):
    env = Environment()
    p = (params or default_params()).with_overrides(
        cache_pages=pages, cache_buckets=buckets
    )
    arena = MemoryArena(pages * 5000 + (1 << 20))
    link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
    host_cpu = CpuPool(env, 8, switch_cost=0)
    dpu_cpu = CpuPool(env, 8, switch_cost=0)
    layout = CacheLayout(arena, pages, 4096, buckets)
    mailbox = Store(env)
    host = HostCachePlane(env, layout, host_cpu, p, mailbox)
    backend = FakeBackend(env)
    ctrl = CacheControlPlane(
        env, link, dpu_cpu, p, layout, mailbox,
        writeback=backend.writeback, fetch=backend.fetch,
        prefetch_enabled=prefetch,
    )
    return env, layout, host, ctrl, backend


def drive(env, gen, until_extra=0.0):
    p = env.process(gen)
    result = env.run(until=p)
    if until_extra:
        env.run(until=env.now + until_extra)
    return result


def test_write_then_read_hit():
    env, _, host, _, _ = build()

    def flow():
        yield from host.write(1, 0, b"cached page data")
        data = yield from host.read(1, 0, 16)
        return data

    assert drive(env, flow()) == b"cached page data"
    assert host.stats.write_inserts == 1
    assert host.stats.read_hits == 1


def test_read_miss_returns_none():
    env, _, host, _, _ = build()

    def flow():
        return (yield from host.read(99, 0))

    assert drive(env, flow()) is None
    assert host.stats.read_misses == 1


def test_overwrite_same_page_no_new_entry():
    env, lay, host, _, _ = build()

    def flow():
        yield from host.write(1, 0, b"v1")
        yield from host.write(1, 0, b"v2")
        return (yield from host.read(1, 0, 2))

    assert drive(env, flow()) == b"v2"
    assert host.stats.write_inserts == 1
    assert host.stats.write_hits == 1
    assert lay.free_count() == lay.pages - 1


def test_flusher_writes_back_dirty_pages():
    env, lay, host, ctrl, backend = build()

    def flow():
        yield from host.write(7, 3, b"dirty data here")

    drive(env, flow(), until_extra=0.01)  # let the flusher run
    assert backend.store[(7, 3)].startswith(b"dirty data here")
    assert ctrl.flushed_pages == 1
    # Page is now clean but still cached.
    idx = host._find(7, 3)
    assert idx is not None
    assert lay.entry_status(idx) == ST_CLEAN


def test_flush_all_synchronous():
    env, _, host, ctrl, backend = build()

    def flow():
        for lpn in range(10):
            yield from host.write(1, lpn, f"page {lpn}".encode())
        n = yield from ctrl.flush_all()
        return n

    n = drive(env, flow())
    # The periodic flusher may claim some pages first; between the two,
    # every page reaches the backend exactly once.
    assert n >= 1
    assert backend.writebacks == 10
    for lpn in range(10):
        assert backend.store[(1, lpn)].startswith(f"page {lpn}".encode())


def test_eviction_when_bucket_full():
    env, lay, host, ctrl, backend = build(pages=8, buckets=1, prefetch=False)

    def flow():
        # 9 distinct pages through an 8-entry bucket forces one eviction.
        for lpn in range(9):
            yield from host.write(1, lpn, f"page-{lpn}".encode())

    drive(env, flow())
    assert ctrl.evictions >= 1
    assert host.stats.evict_waits >= 1


def test_evicted_dirty_page_is_written_back_not_lost():
    env, lay, host, ctrl, backend = build(pages=4, buckets=1, prefetch=False)

    def flow():
        for lpn in range(12):
            yield from host.write(1, lpn, f"page-{lpn}".encode())
        yield from ctrl.flush_all()

    drive(env, flow())
    # Every page either sits in cache or reached the backend.
    for lpn in range(12):
        cached = host._find(1, lpn)
        if cached is None:
            assert backend.store[(1, lpn)].startswith(f"page-{lpn}".encode())


def test_sequential_read_misses_trigger_prefetch():
    env, _, host, ctrl, backend = build(pages=256, buckets=32)
    # Backend holds a sequential file.
    for lpn in range(64):
        backend.store[(5, lpn)] = f"block {lpn}".encode().ljust(4096, b"\0")

    def flow():
        hits = 0
        for lpn in range(32):
            data = yield from host.read(5, lpn)
            if data is not None:
                hits += 1
            else:
                # Demand fetch (what the DPC client would do via nvme-fs).
                yield env.timeout(20e-6)
            # Give the control plane headroom, as a real app's think time would.
            yield env.timeout(10e-6)
        return hits

    hits = drive(env, flow())
    assert ctrl.prefetched_pages > 0
    assert hits > 16  # the stream gets served from cache after detection


def test_prefetched_data_is_correct():
    env, _, host, ctrl, backend = build(pages=256, buckets=32)
    for lpn in range(20):
        backend.store[(5, lpn)] = f"block {lpn}".encode().ljust(4096, b"\0")

    def flow():
        for lpn in range(3):
            yield from host.read(5, lpn)
            yield env.timeout(50e-6)
        # By now pages ahead must be cached; verify content.
        data = yield from host.read(5, 5)
        return data

    data = drive(env, flow())
    assert data is not None and data.startswith(b"block 5")


def test_invalidate_removes_page():
    env, lay, host, _, _ = build()

    def flow():
        yield from host.write(1, 0, b"stale")
        ok = yield from host.invalidate(1, 0)
        data = yield from host.read(1, 0)
        return ok, data

    ok, data = drive(env, flow())
    assert ok is True and data is None
    assert lay.free_count() == lay.pages


def test_invalidate_missing_page():
    env, _, host, _, _ = build()

    def flow():
        return (yield from host.invalidate(42, 42))

    assert drive(env, flow()) is False


def test_free_count_conserved():
    env, lay, host, ctrl, _ = build(pages=16, buckets=2, prefetch=False)

    def flow():
        for lpn in range(30):
            yield from host.write(1, lpn, b"x")
        yield from ctrl.flush_all()

    drive(env, flow(), until_extra=0.01)
    # free + live entries == total
    live = sum(
        1 for i in range(lay.pages) if lay.entry_status(i) in (ST_CLEAN, ST_DIRTY)
    )
    assert lay.free_count() + live == lay.pages


def test_cache_hit_much_faster_than_miss_path():
    """The data-plane-on-host argument: hits never cross PCIe."""
    env, _, host, _, backend = build()
    times = {}

    def flow():
        yield from host.write(1, 0, b"hot")
        t0 = env.now
        yield from host.read(1, 0)
        times["hit"] = env.now - t0
        t0 = env.now
        yield from host.read(2, 0)  # miss
        times["miss_lookup"] = env.now - t0

    drive(env, flow())
    assert times["hit"] < 3e-6  # sub-3us hit


def test_control_plane_dma_traffic_only_on_control_path():
    """Cache hits generate zero PCIe traffic."""
    env, lay, host, ctrl, _ = build(prefetch=False)

    def flow():
        yield from host.write(1, 0, b"data")
        # Wait for flusher to settle.
        yield env.timeout(0.005)
        snap = ctrl.link.stats.snapshot()
        for _ in range(10):
            yield from host.read(1, 0)
        d = ctrl.link.stats.delta(snap)
        return d.ops()

    assert drive(env, flow()) == 0
