"""Property tests: hybrid-cache invariants under randomized concurrency.

After any interleaving of host reads/writes/invalidates with the DPU
flusher, prefetcher, and evictions, the shared region must satisfy:

* free-count conservation: header ``free`` == entries with status FREE;
* uniqueness: no two live entries hold the same <inode, lpn>;
* quiescence: all locks released once every process finishes;
* durability: every page ever written is either live in the cache with the
  latest data or its latest data reached the backend.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.control import CacheControlPlane
from repro.cache.hostplane import HostCachePlane
from repro.cache.layout import (
    CacheLayout,
    LOCK_FREE,
    ST_CLEAN,
    ST_DIRTY,
    ST_FREE,
    ST_INVALID,
)
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink
from repro.sim.resources import Store


class Backend:
    def __init__(self, env):
        self.env = env
        self.store: dict[tuple[int, int], bytes] = {}

    def writeback(self, inode, lpn, data):
        yield self.env.timeout(3e-6)
        self.store[(inode, lpn)] = data

    def fetch(self, inode, lpn):
        yield self.env.timeout(3e-6)
        data = self.store.get((inode, lpn))
        return None if data is None else [(lpn, data)]


def build(pages=16, buckets=2):
    env = Environment()
    p = default_params().with_overrides(cache_flush_period=50e-6)
    arena = MemoryArena(1 << 20)
    link = PcieLink(env, arena)
    cpu = CpuPool(env, 8, switch_cost=0)
    layout = CacheLayout(arena, pages, 4096, buckets)
    mailbox = Store(env)
    host = HostCachePlane(env, layout, cpu, p, mailbox)
    backend = Backend(env)
    ctrl = CacheControlPlane(
        env, link, cpu, p, layout, mailbox,
        writeback=backend.writeback, fetch=backend.fetch, prefetch_enabled=True,
    )
    return env, layout, host, ctrl, backend


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "invalidate", "flush", "pause"]),
        st.integers(0, 2),  # inode
        st.integers(0, 11),  # lpn
        st.integers(0, 255),  # fill byte / version
        st.integers(0, 3),  # worker id
    ),
    min_size=1,
    max_size=40,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops_strategy)
def test_cache_invariants_random_concurrency(ops):
    env, layout, host, ctrl, backend = build()
    #: the latest value written per key, per the program order we impose
    latest: dict[tuple[int, int], bytes] = {}
    by_worker: dict[int, list] = {}
    for op in ops:
        by_worker.setdefault(op[4], []).append(op)

    def worker(my_ops):
        for kind, inode, lpn, fill, _w in my_ops:
            if kind == "write":
                data = bytes([fill]) * 64
                yield from host.write(inode, lpn, data)
                latest[(inode, lpn)] = data  # workers don't overlap keys below
            elif kind == "read":
                got = yield from host.read(inode, lpn, 64)
                if got is not None and (inode, lpn) in latest:
                    pass  # freshness asserted at quiescence
            elif kind == "invalidate":
                yield from host.invalidate(inode, lpn)
                latest.pop((inode, lpn), None)
            elif kind == "flush":
                yield from ctrl.flush_all()
            else:
                yield env.timeout(20e-6)

    # Partition keys per worker to keep 'latest' well-defined: worker w only
    # touches lpns where lpn % 4 == w.
    procs = []
    for w, my_ops in by_worker.items():
        mine = [op for op in my_ops if op[2] % 4 == w]
        if mine:
            procs.append(env.process(worker(mine)))
    if procs:
        env.run(until=env.all_of(procs))
    # Let the background machinery settle, then flush everything.
    env.run(until=env.now + 5e-3)
    env.run(until=env.process(ctrl.flush_all()))

    # ---- invariants -----------------------------------------------------
    statuses = [layout.entry_status(i) for i in range(layout.pages)]
    # 1. Free-count conservation.
    assert layout.free_count() == sum(1 for s in statuses if s == ST_FREE)
    # 2. No duplicate live keys.
    live = [
        layout.entry_key(i)
        for i in range(layout.pages)
        if statuses[i] in (ST_CLEAN, ST_DIRTY, ST_INVALID)
    ]
    assert len(live) == len(set(live)), f"duplicate keys in cache: {live}"
    # 3. All locks free at quiescence.
    for i in range(layout.pages):
        assert layout.read_entry(i)["lock"] == LOCK_FREE
    # 4. Durability/freshness: each latest write is visible in cache or backend.
    for (inode, lpn), data in latest.items():
        found = None
        for i in range(layout.pages):
            if statuses[i] in (ST_CLEAN, ST_DIRTY) and layout.entry_key(i) == (inode, lpn):
                found = layout.read_page(i, len(data))
                break
        if found is None:
            found = backend.store.get((inode, lpn), b"")[: len(data)]
        assert found == data, f"lost write for {(inode, lpn)}"
