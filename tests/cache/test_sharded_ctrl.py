"""Sharded control plane: routing invariants and cross-shard durability."""

import pytest

from repro.cache.control import CacheControlPlane
from repro.cache.hostplane import HostCachePlane
from repro.cache.layout import CacheLayout, ST_CLEAN, ST_DIRTY
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink
from repro.sim.resources import Store


class FakeBackend:
    def __init__(self, env):
        self.env = env
        self.store = {}
        self.writebacks = 0

    def writeback(self, inode, lpn, data):
        yield self.env.timeout(5e-6)
        self.store[(inode, lpn)] = data
        self.writebacks += 1

    def fetch(self, inode, lpn):
        yield self.env.timeout(5e-6)
        data = self.store.get((inode, lpn))
        return None if data is None else [(lpn, data)]


def build(pages=64, buckets=8, shards=4, prefetch=False):
    env = Environment()
    p = default_params().with_overrides(
        cache_pages=pages, cache_buckets=buckets, cache_ctrl_shards=shards
    )
    arena = MemoryArena(pages * 5000 + (1 << 20))
    link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
    host_cpu = CpuPool(env, 8, switch_cost=0)
    dpu_cpu = CpuPool(env, 8, switch_cost=0)
    layout = CacheLayout(arena, pages, 4096, buckets)
    mailbox = Store(env)
    host = HostCachePlane(env, layout, host_cpu, p, mailbox)
    backend = FakeBackend(env)
    ctrl = CacheControlPlane(
        env, link, dpu_cpu, p, layout, mailbox,
        writeback=backend.writeback, fetch=backend.fetch,
        prefetch_enabled=prefetch,
    )
    return env, layout, host, ctrl, backend


def drive(env, gen, until_extra=0.0):
    proc = env.process(gen)
    result = env.run(until=proc)
    if until_extra:
        env.run(until=env.now + until_extra)
    return result


@pytest.mark.parametrize("shards,buckets", [(1, 8), (2, 8), (4, 8), (4, 10), (8, 8), (16, 8)])
def test_bucket_to_shard_routing_is_a_total_partition(shards, buckets):
    """Every bucket maps to exactly one shard; ranges are contiguous and
    cover the whole table — no bucket is ever touched by two shards."""
    env, _, _, ctrl, _ = build(pages=buckets * 8, buckets=buckets, shards=shards)
    owners = [ctrl.shard_of_bucket(b) for b in range(buckets)]
    assert all(0 <= o < ctrl.nshards for o in owners)
    # Contiguous, monotone ranges.
    assert owners == sorted(owners)
    # Matches each shard's declared [lo, hi) range exactly.
    for shard in ctrl._shards:
        for b in range(buckets):
            assert (shard.lo <= b < shard.hi) == (owners[b] == shard.sid)
    # A shard count above the bucket count is clamped, not broken.
    assert ctrl.nshards <= buckets


def test_shard_count_clamped_to_buckets():
    env, _, _, ctrl, _ = build(pages=32, buckets=4, shards=16)
    assert ctrl.nshards == 4


def test_dirty_notifications_reach_only_the_owning_shard():
    env, lay, host, ctrl, _ = build(pages=64, buckets=8, shards=4)

    def flow():
        for lpn in range(16):
            yield from host.write(1, lpn, f"p{lpn}".encode())

    drive(env, flow())
    env.run(until=env.now + 50e-6)  # let routing + servers settle, pre-flush
    for shard in ctrl._shards:
        for b in shard.dirty_buckets:
            assert ctrl.shard_of_bucket(b) == shard.sid
            assert shard.lo <= b < shard.hi


def test_flushers_run_per_shard_and_cover_all_buckets():
    """Dirty pages spread over every shard's range all get written back."""
    env, lay, host, ctrl, backend = build(pages=64, buckets=8, shards=4)

    def flow():
        for lpn in range(32):
            yield from host.write(1, lpn, f"page-{lpn}".encode())

    drive(env, flow(), until_extra=0.02)  # several flush periods
    # Every dirty page either still sits in cache as clean or was evicted
    # after writeback — nothing stays dirty once the flushers sweep.
    dirty_left = sum(
        1 for i in range(lay.pages) if lay.entry_status(i) == ST_DIRTY
    )
    assert dirty_left == 0
    assert backend.writebacks >= 1
    for lpn in range(32):
        idx = host._find(1, lpn)
        if idx is None:
            assert backend.store[(1, lpn)].startswith(f"page-{lpn}".encode())


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_flush_all_durable_across_shard_counts(shards):
    """flush_all must push every dirty page regardless of the shard split."""
    env, lay, host, ctrl, backend = build(pages=64, buckets=8, shards=shards)

    def flow():
        for lpn in range(24):
            yield from host.write(3, lpn, f"content-{lpn}".encode())
        yield from ctrl.flush_all()

    drive(env, flow())
    for lpn in range(24):
        assert backend.store[(3, lpn)].startswith(f"content-{lpn}".encode())
    assert all(
        lay.entry_status(i) != ST_DIRTY for i in range(lay.pages)
    )


def test_eviction_requests_route_to_owning_shard_and_complete():
    env, lay, host, ctrl, _ = build(pages=8, buckets=1, shards=4, prefetch=False)

    def flow():
        for lpn in range(12):  # overflow the single bucket
            yield from host.write(1, lpn, f"x{lpn}".encode())

    drive(env, flow())
    assert ctrl.evictions >= 1
    assert host.stats.evict_waits >= 1


def test_single_shard_reproduces_serialized_control_plane():
    """shards=1 must behave like the original single-loop control plane."""
    env, lay, host, ctrl, backend = build(pages=64, buckets=8, shards=1)
    assert ctrl.nshards == 1
    assert (ctrl._shards[0].lo, ctrl._shards[0].hi) == (0, 8)

    def flow():
        yield from host.write(2, 5, b"only page")
        n = yield from ctrl.flush_all()
        return n

    assert drive(env, flow()) == 1
    assert backend.store[(2, 5)].startswith(b"only page")


def test_free_count_conserved_with_shards():
    env, lay, host, ctrl, _ = build(pages=16, buckets=2, shards=2, prefetch=False)

    def flow():
        for lpn in range(30):
            yield from host.write(1, lpn, b"x")
        yield from ctrl.flush_all()

    drive(env, flow(), until_extra=0.01)
    live = sum(
        1
        for i in range(lay.pages)
        if lay.entry_status(i) in (ST_CLEAN, ST_DIRTY)
    )
    assert lay.free_count() + live == lay.pages
