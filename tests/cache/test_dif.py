"""DIF (data-integrity-field) tests: flush-time guard tags catch corruption."""

import pytest

from repro.cache.control import CacheControlPlane
from repro.cache.hostplane import HostCachePlane
from repro.cache.layout import CacheLayout
from repro.core import build_dpc_system
from repro.host.vfs import O_CREAT
from repro.kvfs import schema
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink
from repro.sim.resources import Store


class MutableBackend:
    """A backend whose stored bytes tests can corrupt."""

    def __init__(self, env):
        self.env = env
        self.store: dict[tuple[int, int], bytes] = {}

    def writeback(self, inode, lpn, data):
        yield self.env.timeout(2e-6)
        self.store[(inode, lpn)] = data

    def fetch(self, inode, lpn):
        yield self.env.timeout(2e-6)
        data = self.store.get((inode, lpn))
        return None if data is None else [(lpn, data)]


def build(dif=True):
    env = Environment()
    p = default_params().with_overrides(cache_pages=64, cache_buckets=8)
    arena = MemoryArena(1 << 20)
    link = PcieLink(env, arena)
    cpu = CpuPool(env, 8, switch_cost=0)
    layout = CacheLayout(arena, 64, 4096, 8)
    mailbox = Store(env)
    host = HostCachePlane(env, layout, cpu, p, mailbox)
    backend = MutableBackend(env)
    ctrl = CacheControlPlane(
        env, link, cpu, p, layout, mailbox,
        writeback=backend.writeback, fetch=backend.fetch,
        prefetch_enabled=False, dif_enabled=dif,
    )
    return env, host, ctrl, backend


def run(env, gen):
    return env.run(until=env.process(gen))


def test_flush_records_guard_tags():
    env, host, ctrl, backend = build()

    def flow():
        yield from host.write(1, 0, b"guarded page")
        yield from ctrl.flush_all()

    run(env, flow())
    assert (1, 0) in ctrl._dif


def test_clean_refetch_verifies_ok():
    env, host, ctrl, backend = build()

    def flow():
        yield from host.write(1, 0, b"round trip")
        yield from ctrl.flush_all()
        yield from host.invalidate(1, 0)
        ok = yield from ctrl.fill(1, 0, backend.store[(1, 0)])
        data = yield from host.read(1, 0, 10)
        return ok, data

    ok, data = run(env, flow())
    assert ok is True and data == b"round trip"
    assert ctrl.dif_checks == 1 and ctrl.dif_errors == 0


def test_corrupted_backend_page_is_rejected():
    env, host, ctrl, backend = build()

    def flow():
        yield from host.write(1, 0, b"precious")
        yield from ctrl.flush_all()
        yield from host.invalidate(1, 0)
        # Bit rot in the backend.
        page = bytearray(backend.store[(1, 0)])
        page[0] ^= 0xFF
        backend.store[(1, 0)] = bytes(page)
        ok = yield from ctrl.fill(1, 0, backend.store[(1, 0)])
        return ok

    assert run(env, flow()) is False
    assert ctrl.dif_errors == 1


def test_dif_disabled_accepts_anything():
    env, host, ctrl, backend = build(dif=False)

    def flow():
        yield from host.write(1, 0, b"whatever")
        yield from ctrl.flush_all()
        yield from host.invalidate(1, 0)
        return (yield from ctrl.fill(1, 0, b"\xde\xad" * 2048))

    assert run(env, flow()) is True
    assert ctrl.dif_checks == 0


def test_unknown_page_skips_verification():
    env, host, ctrl, backend = build()

    def flow():
        return (yield from ctrl.fill(9, 9, b"never flushed"))

    assert run(env, flow()) is True
    assert ctrl.dif_checks == 0


def test_dif_drop_clears_tag():
    env, host, ctrl, backend = build()

    def flow():
        yield from host.write(1, 0, b"v1")
        yield from ctrl.flush_all()
        ctrl.dif_drop(1, 0)
        yield from host.invalidate(1, 0)
        # Different content would have failed the check; tag is gone.
        return (yield from ctrl.fill(1, 0, b"v2-different"))

    assert run(env, flow()) is True
    assert ctrl.dif_errors == 0


def test_direct_write_in_full_system_drops_stale_tag():
    """End-to-end: buffered write -> flush (tag) -> direct overwrite ->
    re-read must not be rejected as corruption."""
    from repro.host.adapters import O_DIRECT

    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/f", O_CREAT)
        yield from sys.vfs.write(f, 0, b"A" * 4096)
        yield from sys.vfs.fsync(f)  # flush -> DIF tag recorded
        fd = yield from sys.vfs.open("/kvfs/f", O_DIRECT)
        yield from sys.vfs.write(fd, 0, b"B" * 4096)  # direct: tag dropped
        # Invalidate the cached copy, force a backend re-read + fill.
        yield from sys.cache_host.invalidate(f.ino << 1, 0)
        data = yield from sys.vfs.read(f, 0, 4096)
        yield sys.env.timeout(1e-3)
        return data

    data = sys.run_until(app())
    assert data == b"B" * 4096
    assert sys.cache_ctrl.dif_errors == 0


def test_dif_drop_file():
    env, host, ctrl, backend = build()

    def flow():
        for lpn in range(3):
            yield from host.write(7, lpn, b"x")
        yield from ctrl.flush_all()

    run(env, flow())
    assert sum(1 for k in ctrl._dif if k[0] == 7) == 3
    ctrl.dif_drop_file(7)
    assert sum(1 for k in ctrl._dif if k[0] == 7) == 0
