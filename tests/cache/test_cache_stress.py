"""Concurrency stress: parallel host readers/writers against the sharded
flusher/evictor.

Invariants checked (satellite of the scale-out cache PR):

* **no torn reads** — every page a reader observes is a value some writer
  actually wrote in full (writers use self-describing uniform payloads);
* **no lost dirty pages** — after the writers finish and ``flush_all``
  returns, every key's final version is bit-exact in the cache or in the
  backend;
* **metadata stays consistent** — free-count conservation and no duplicate
  live keys, even with eviction pressure across shard boundaries.
"""

import pytest

from repro.cache.control import CacheControlPlane
from repro.cache.hostplane import HostCachePlane
from repro.cache.layout import CacheLayout, LOCK_FREE, ST_CLEAN, ST_DIRTY
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink
from repro.sim.resources import Store

PAGE = 4096


class FakeBackend:
    def __init__(self, env):
        self.env = env
        self.store = {}
        self.writebacks = 0

    def writeback(self, inode, lpn, data):
        yield self.env.timeout(5e-6)
        self.store[(inode, lpn)] = data
        self.writebacks += 1

    def fetch(self, inode, lpn):
        yield self.env.timeout(5e-6)
        data = self.store.get((inode, lpn))
        return None if data is None else [(lpn, data)]


def build(pages, buckets, shards, seqlock=True):
    env = Environment()
    p = default_params().with_overrides(
        cache_pages=pages,
        cache_buckets=buckets,
        cache_ctrl_shards=shards,
        cache_seqlock=seqlock,
        cache_flush_period=50e-6,  # aggressive flushing = more interleaving
    )
    arena = MemoryArena(pages * 5000 + (1 << 20))
    link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
    host_cpu = CpuPool(env, 16, switch_cost=0)
    dpu_cpu = CpuPool(env, 16, switch_cost=0)
    layout = CacheLayout(arena, pages, PAGE, buckets)
    mailbox = Store(env)
    host = HostCachePlane(env, layout, host_cpu, p, mailbox)
    backend = FakeBackend(env)
    ctrl = CacheControlPlane(
        env, link, dpu_cpu, p, layout, mailbox,
        writeback=backend.writeback, fetch=backend.fetch,
        prefetch_enabled=False,
    )
    return env, layout, host, ctrl, backend


def payload(inode, lpn, ver):
    """Self-describing page: a uniform byte derived from (inode, lpn, ver).

    Uniformity makes tearing detectable (a torn copy mixes two byte values);
    the recorded version log makes every observed value attributable.
    """
    return bytes([(inode * 89 + lpn * 31 + ver * 7) % 251]) * PAGE


@pytest.mark.parametrize("shards,seqlock", [(1, False), (4, True), (8, True)])
def test_concurrent_readers_writers_flushers(shards, seqlock):
    n_inodes, n_lpns, versions = 3, 8, 6
    # 24 distinct keys through a 16-page cache: constant eviction pressure.
    env, lay, host, ctrl, backend = build(
        pages=16, buckets=4, shards=shards, seqlock=seqlock
    )
    written = {}  # key -> list of versions written so far
    torn = []
    unattributed = []

    def writer(inode):
        for ver in range(versions):
            for lpn in range(n_lpns):
                data = payload(inode, lpn, ver)
                yield from host.write(inode, lpn, data)
                written.setdefault((inode, lpn), []).append(ver)
                yield env.timeout(2e-6)

    def reader(inode, seed):
        for i in range(versions * n_lpns):
            lpn = (seed + i * 5) % n_lpns
            data = yield from host.read(inode, lpn)
            if data is None:
                yield env.timeout(3e-6)
                continue
            if len(set(data)) != 1:
                torn.append((inode, lpn))
            else:
                vers = written.get((inode, lpn), [])
                if not any(data == payload(inode, lpn, v) for v in vers):
                    unattributed.append((inode, lpn, data[0]))
            yield env.timeout(1e-6)

    procs = []
    for inode in range(1, n_inodes + 1):
        procs.append(env.process(writer(inode)))
        procs.append(env.process(reader(inode, inode)))
    env.run(until=env.all_of(procs))

    assert not torn, f"torn reads observed: {torn[:3]}"
    assert not unattributed, f"phantom values observed: {unattributed[:3]}"

    # Writers are done: flush everything and verify durability.
    final = env.process(ctrl.flush_all())
    env.run(until=final)
    env.run(until=env.now + 0.01)  # drain stragglers (evictions in flight)

    for inode in range(1, n_inodes + 1):
        for lpn in range(n_lpns):
            expect = payload(inode, lpn, versions - 1)
            idx = host._find(inode, lpn)
            if idx is not None:
                assert lay.read_page(idx) == expect, (
                    f"cache holds stale data for {(inode, lpn)}"
                )
                assert lay.entry_status(idx) == ST_CLEAN
            else:
                assert backend.store.get((inode, lpn)) == expect, (
                    f"final version of {(inode, lpn)} lost on eviction"
                )

    # Metadata invariants at quiescence.
    live = [
        i for i in range(lay.pages) if lay.entry_status(i) in (ST_CLEAN, ST_DIRTY)
    ]
    assert lay.free_count() + len(live) == lay.pages
    keys = [lay.entry_key(i) for i in live]
    assert len(keys) == len(set(keys)), "duplicate live keys after stress"
    assert all(
        lay.read_entry(i)["lock"] == LOCK_FREE for i in range(lay.pages)
    ), "a lock word leaked"
    assert all(
        lay.entry_gen(i) % 2 == 0 for i in range(lay.pages)
    ), "an odd (mid-mutation) generation leaked"


def test_stress_with_prefetch_and_read_back_bit_exact():
    """Sequential readers + writers on disjoint inodes with prefetch on:
    prefetched pages must be bit-exact against the backend."""
    env, lay, host, ctrl, backend = build(pages=64, buckets=8, shards=4)
    ctrl.prefetch_enabled = True
    for lpn in range(32):
        backend.store[(9, lpn)] = payload(9, lpn, 0)
    mismatched = []

    def seq_reader():
        for lpn in range(32):
            data = yield from host.read(9, lpn)
            if data is None:
                yield env.timeout(20e-6)  # demand-fetch think time
            elif data != payload(9, lpn, 0):
                mismatched.append(lpn)
            yield env.timeout(5e-6)

    def writer():
        for ver in range(5):
            for lpn in range(6):
                yield from host.write(2, lpn, payload(2, lpn, ver))
                yield env.timeout(4e-6)

    procs = [env.process(seq_reader()), env.process(writer())]
    env.run(until=env.all_of(procs))
    assert not mismatched, f"prefetched pages corrupt: {mismatched}"
    assert ctrl.prefetched_pages > 0

    final = env.process(ctrl.flush_all())
    env.run(until=final)
    for lpn in range(6):
        expect = payload(2, lpn, 4)
        idx = host._find(2, lpn)
        got = lay.read_page(idx) if idx is not None else backend.store.get((2, lpn))
        assert got == expect
