"""Unit tests for the cache memory layout and policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.layout import (
    CacheLayout,
    ENTRY_SIZE,
    LOCK_FREE,
    LOCK_READ,
    LOCK_WRITE,
    NIL,
    ST_CLEAN,
    ST_DIRTY,
    ST_FREE,
)
from repro.cache.policies import ClockPolicy, LruPolicy, SequentialPrefetcher
from repro.sim.memory import MemoryArena


def make_layout(pages=64, buckets=8, page_size=4096):
    arena = MemoryArena(pages * (page_size + ENTRY_SIZE) + 4096 * 4)
    return CacheLayout(arena, pages, page_size, buckets)


def test_header_fields_initialised():
    lay = make_layout()
    h = lay.header()
    assert h["pagesize"] == 4096
    assert h["total"] == 64
    assert h["free"] == 64
    assert h["buckets"] == 8
    assert h["entries_per_bucket"] == 8
    assert h["mode"] == 1


def test_pages_must_divide_buckets():
    arena = MemoryArena(1 << 20)
    with pytest.raises(ValueError):
        CacheLayout(arena, pages=10, buckets=3, page_size=512)


def test_bucket_chains_cover_all_entries_once():
    lay = make_layout()
    seen = []
    for b in range(lay.buckets):
        seen.extend(lay.chain(b))
    assert sorted(seen) == list(range(lay.pages))


def test_chain_terminates_with_nil():
    lay = make_layout(pages=16, buckets=4)
    chain = list(lay.chain(0))
    assert len(chain) == 4
    assert lay.entry_next(chain[-1]) == NIL


def test_entry_initial_state():
    lay = make_layout()
    e = lay.read_entry(0)
    assert e["lock"] == LOCK_FREE
    assert e["status"] == ST_FREE


def test_bucket_of_is_deterministic_and_in_range():
    lay = make_layout()
    for ino in range(20):
        for lpn in range(20):
            b = lay.bucket_of(ino, lpn)
            assert 0 <= b < lay.buckets
            assert b == lay.bucket_of(ino, lpn)


def test_entry_and_page_pairing():
    """Entry i corresponds positionally to page i."""
    lay = make_layout()
    assert lay.page_addr(0) == lay.data_base
    assert lay.page_addr(5) - lay.page_addr(4) == lay.page_size
    assert lay.entry_addr(5) - lay.entry_addr(4) == ENTRY_SIZE


def test_page_read_write():
    lay = make_layout()
    lay.write_page(3, b"hello page")
    assert lay.read_page(3, 10) == b"hello page"
    with pytest.raises(ValueError):
        lay.write_page(3, b"x" * (lay.page_size + 1))


def test_lock_cas_semantics():
    lay = make_layout()
    assert lay.try_lock(0, LOCK_WRITE)
    assert not lay.try_lock(0, LOCK_READ)  # already write-locked
    assert not lay.unlock(0, LOCK_READ)  # wrong kind
    assert lay.unlock(0, LOCK_WRITE)
    assert lay.try_lock(0, LOCK_READ)
    assert lay.unlock(0, LOCK_READ)


def test_status_and_key_accessors():
    lay = make_layout()
    lay.set_entry_key(7, 1234, 56)
    lay.set_entry_status(7, ST_DIRTY)
    assert lay.entry_key(7) == (1234, 56)
    assert lay.entry_status(7) == ST_DIRTY


def test_free_count_adjustment():
    lay = make_layout()
    lay.adjust_free(-3)
    assert lay.free_count() == 61
    lay.adjust_free(3)
    assert lay.free_count() == 64


def test_index_bounds_checked():
    lay = make_layout()
    with pytest.raises(IndexError):
        lay.entry_addr(lay.pages)
    with pytest.raises(IndexError):
        lay.page_addr(-1)


# ---------------------------------------------------------------- policies
def test_lru_victim_is_least_recent():
    p = LruPolicy()
    for i in [1, 2, 3]:
        p.touch(i)
    p.touch(1)  # 2 is now coldest
    assert p.victim([1, 2, 3]) == 2


def test_lru_untouched_candidates_are_coldest():
    p = LruPolicy()
    p.touch(1)
    assert p.victim([1, 9]) == 9


def test_lru_empty_candidates():
    assert LruPolicy().victim([]) is None


def test_clock_gives_second_chance():
    p = ClockPolicy()
    p.touch(1)
    p.touch(2)
    # Both referenced: first sweep clears bits, second sweep evicts 1.
    assert p.victim([1, 2]) == 1


def test_clock_prefers_unreferenced():
    p = ClockPolicy()
    p.touch(1)
    assert p.victim([1, 2]) == 2


def test_prefetcher_triggers_on_sequential_run():
    pf = SequentialPrefetcher(window=4, trigger=2)
    assert pf.observe(1, 0) == []  # run = 1
    got = pf.observe(1, 1)  # run = 2 -> trigger
    assert got == [2, 3, 4, 5]


def test_prefetcher_extends_without_refetching():
    pf = SequentialPrefetcher(window=4, trigger=2)
    pf.observe(1, 0)
    pf.observe(1, 1)  # prefetched up to 5
    got = pf.observe(1, 2)
    assert got == [6]  # only the new horizon


def test_prefetcher_random_access_never_triggers():
    pf = SequentialPrefetcher(window=4, trigger=2)
    for lpn in [10, 3, 77, 21, 5]:
        assert pf.observe(2, lpn) == []


def test_prefetcher_streams_are_per_inode():
    pf = SequentialPrefetcher(window=2, trigger=2)
    pf.observe(1, 0)
    pf.observe(2, 1)
    assert pf.observe(1, 1) != []  # inode 1's stream unaffected by inode 2


def test_prefetcher_drop():
    pf = SequentialPrefetcher(window=2, trigger=2)
    pf.observe(1, 0)
    pf.drop(1)
    assert pf.observe(1, 1) == []  # stream state gone


def test_prefetcher_repeated_page_keeps_stream():
    pf = SequentialPrefetcher(window=2, trigger=2)
    pf.observe(1, 0)
    pf.observe(1, 0)  # repeat
    assert pf.observe(1, 1) != []


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 100)), max_size=50))
def test_prefetcher_never_suggests_behind_reader(accesses):
    pf = SequentialPrefetcher(window=8, trigger=2)
    for ino, lpn in accesses:
        suggested = pf.observe(ino, lpn)
        assert all(s > lpn for s in suggested)
