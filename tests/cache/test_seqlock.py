"""Seqlock read fast path: atomics accounting and torn-read protection."""

from repro.cache.control import CacheControlPlane
from repro.cache.hostplane import HostCachePlane
from repro.cache.layout import CacheLayout, ST_CLEAN
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.pcie import PcieLink
from repro.sim.resources import Store


class FakeBackend:
    def __init__(self, env):
        self.env = env
        self.store = {}
        self.writebacks = 0

    def writeback(self, inode, lpn, data):
        yield self.env.timeout(5e-6)
        self.store[(inode, lpn)] = data
        self.writebacks += 1

    def fetch(self, inode, lpn):
        yield self.env.timeout(5e-6)
        data = self.store.get((inode, lpn))
        return None if data is None else [(lpn, data)]


def build(pages=64, buckets=8, seqlock=True, shards=1, prefetch=False):
    env = Environment()
    p = default_params().with_overrides(
        cache_pages=pages,
        cache_buckets=buckets,
        cache_seqlock=seqlock,
        cache_ctrl_shards=shards,
    )
    arena = MemoryArena(pages * 5000 + (1 << 20))
    link = PcieLink(env, arena, latency=p.pcie_latency, bandwidth=p.pcie_bandwidth)
    host_cpu = CpuPool(env, 8, switch_cost=0)
    dpu_cpu = CpuPool(env, 8, switch_cost=0)
    layout = CacheLayout(arena, pages, 4096, buckets)
    mailbox = Store(env)
    host = HostCachePlane(env, layout, host_cpu, p, mailbox)
    backend = FakeBackend(env)
    ctrl = CacheControlPlane(
        env, link, dpu_cpu, p, layout, mailbox,
        writeback=backend.writeback, fetch=backend.fetch,
        prefetch_enabled=prefetch,
    )
    return env, layout, host, ctrl, backend


def drive(env, gen, until_extra=0.0):
    proc = env.process(gen)
    result = env.run(until=proc)
    if until_extra:
        env.run(until=env.now + until_extra)
    return result


def test_uncontended_read_hit_performs_zero_atomics():
    """The tentpole claim: an uncontended host read hit costs 0 atomics."""
    env, lay, host, ctrl, _ = build(seqlock=True)

    def flow():
        yield from host.write(1, 0, b"hot page")
        yield env.timeout(0.005)  # let the flusher clean it and go idle
        a0 = lay.host_atomics
        for _ in range(10):
            data = yield from host.read(1, 0, 8)
            assert data == b"hot page"
        return lay.host_atomics - a0

    delta = drive(env, flow())
    assert delta == 0
    assert host.stats.read_hits == 10
    assert host.stats.seqlock_hits == 10
    assert host.stats.read_atomics == 0
    assert host.stats.atomics_per_hit() == 0.0


def test_locked_read_path_pays_two_atomics_per_hit():
    """With the seqlock disabled, every hit is a lock/unlock CAS pair."""
    env, lay, host, _, _ = build(seqlock=False)

    def flow():
        yield from host.write(1, 0, b"hot page")
        yield env.timeout(0.005)
        a0 = lay.host_atomics
        for _ in range(10):
            yield from host.read(1, 0, 8)
        return lay.host_atomics - a0

    delta = drive(env, flow())
    assert delta == 20  # lock + unlock per hit
    assert host.stats.seqlock_hits == 0
    assert host.stats.read_atomics == 20
    assert host.stats.atomics_per_hit() == 2.0


def test_seqlock_hit_is_cheaper_than_locked_hit():
    """The atomics the fast path elides are real simulated time."""

    def hit_latency(seqlock):
        env, _, host, _, _ = build(seqlock=seqlock)
        times = {}

        def flow():
            yield from host.write(1, 0, b"hot")
            yield env.timeout(0.005)
            t0 = env.now
            for _ in range(10):
                yield from host.read(1, 0)
            times["hit"] = (env.now - t0) / 10

        drive(env, flow())
        return times["hit"]

    assert hit_latency(True) < hit_latency(False)


def test_no_torn_reads_under_concurrent_writes():
    """Optimistic copies racing writers must never observe a mixed page."""
    env, _, host, _, _ = build(seqlock=True)
    page = 4096
    bad = []

    def writer():
        for ver in range(40):
            payload = bytes([ver % 251]) * page
            yield from host.write(7, 3, payload)
            yield env.timeout(0.3e-6)

    def reader():
        for _ in range(200):
            data = yield from host.read(7, 3)
            if data is not None and len(set(data)) != 1:
                bad.append(data)
            yield env.timeout(0.1e-6)

    wp = env.process(writer())
    rp = env.process(reader())
    env.run(until=env.all_of([wp, rp]))
    assert not bad, "seqlock reader returned a torn page"
    assert host.stats.read_hits > 0


def test_generation_stays_even_at_rest_and_grows_monotonically():
    """Writers always publish an even generation; values never go back."""
    env, lay, host, ctrl, backend = build(seqlock=True, prefetch=False)

    def flow():
        yield from host.write(1, 0, b"v1")
        idx = host._find(1, 0)
        g1 = lay.entry_gen(idx)
        assert g1 % 2 == 0 and g1 > 0
        yield from host.write(1, 0, b"v2")
        g2 = lay.entry_gen(idx)
        assert g2 % 2 == 0 and g2 > g1
        yield from host.invalidate(1, 0)
        g3 = lay.entry_gen(idx)
        assert g3 % 2 == 0 and g3 > g2
        # DPU-side fill into the same bucket keeps the counter moving.
        backend.store[(1, 0)] = b"filled".ljust(4096, b"\0")
        ok = yield from ctrl.fill(1, 0, backend.store[(1, 0)])
        assert ok
        idx2 = host._find(1, 0)
        assert lay.entry_gen(idx2) % 2 == 0
        if idx2 == idx:
            assert lay.entry_gen(idx2) > g3

    drive(env, flow(), until_extra=0.005)


def test_seqlock_fallback_when_writer_holds_lock():
    """A reader that keeps losing the generation race takes the locked path."""
    env, lay, host, _, _ = build(seqlock=True)

    def flow():
        yield from host.write(1, 0, b"data")
        yield env.timeout(0.005)
        idx = host._find(1, 0)
        # Freeze the entry mid-mutation: odd generation, no lock holder.
        lay.gen_begin_write(idx)
        data = yield from host.read(1, 0, 4)
        lay.gen_end_write(idx)
        return data

    assert drive(env, flow()) == b"data"
    assert host.stats.seqlock_fallbacks == 1
    assert host.stats.read_atomics > 0  # fell back to the CAS pair


def test_flusher_does_not_perturb_seqlock_readers():
    """Flush transitions (dirty->clean) don't move data: hits stay lock-free
    while the page is concurrently written back."""
    env, lay, host, ctrl, backend = build(seqlock=True)

    def flow():
        yield from host.write(9, 1, b"dirty")
        hits0 = host.stats.seqlock_hits
        for _ in range(50):
            data = yield from host.read(9, 1, 5)
            assert data == b"dirty"
            yield env.timeout(10e-6)  # span several flush periods
        return host.stats.seqlock_hits - hits0

    lockfree = drive(env, flow(), until_extra=0.005)
    assert ctrl.flushed_pages >= 1
    idx = host._find(9, 1)
    assert lay.entry_status(idx) == ST_CLEAN
    # The flusher holds the lock word briefly; at most a couple of reads
    # fall back, everything else stays on the fast path.
    assert lockfree >= 45
