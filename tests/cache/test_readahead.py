"""AdaptiveReadahead: window ramp, collapse, and fast start."""

import pytest

from repro.cache.policies import AdaptiveReadahead


def test_fast_start_at_file_offset_zero():
    """Reading lpn 0 of a fresh inode opens a window immediately: one
    compulsory miss, not two."""
    ra = AdaptiveReadahead(init_window=4, max_window=32)
    wants = ra.observe(1, 0)
    assert wants == [1, 2, 3, 4]


def test_mid_file_first_access_needs_trigger():
    ra = AdaptiveReadahead(init_window=4, max_window=32, trigger=2)
    assert ra.observe(1, 10) == []          # first touch: no stream yet
    assert ra.observe(1, 11) == [12, 13, 14, 15]  # second sequential: promoted


def test_window_doubles_up_to_cap():
    ra = AdaptiveReadahead(init_window=4, max_window=16)
    ra.observe(1, 0)            # window 4 consumed, ramps to 8
    assert ra.window_of(1) == 8
    w2 = ra.observe(1, 1)       # window 8: extends high from 4 to 9
    assert w2 == [5, 6, 7, 8, 9]
    assert ra.window_of(1) == 16
    ra.observe(1, 2)
    assert ra.window_of(1) == 16  # saturated at max_window


def test_window_collapses_on_random_access():
    ra = AdaptiveReadahead(init_window=4, max_window=64)
    for lpn in range(4):
        ra.observe(1, lpn)
    assert ra.window_of(1) > 4
    ra.observe(1, 1000)  # random jump
    assert ra.window_of(1) == 4


def test_random_stream_never_prefetches():
    ra = AdaptiveReadahead(init_window=4, max_window=64)
    total = []
    for lpn in (500, 3, 998, 47, 12, 700):
        total += ra.observe(1, lpn)
    assert total == []


def test_repeated_page_neither_extends_nor_breaks():
    ra = AdaptiveReadahead(init_window=4, max_window=64)
    ra.observe(1, 0)
    high_before = ra._streams[1][3]
    ra.observe(1, 0)  # re-read the same page
    assert ra._streams[1][3] == high_before
    # The stream survives: the next sequential page still extends.
    assert ra.observe(1, 1) != []


def test_streams_are_per_inode():
    ra = AdaptiveReadahead(init_window=4, max_window=64)
    ra.observe(1, 0)
    ra.observe(2, 500)  # unrelated inode, random offset
    assert ra.window_of(1) == 8
    assert ra.window_of(2) == 4


def test_never_reproposes_prefetched_pages():
    ra = AdaptiveReadahead(init_window=4, max_window=8)
    seen = set()
    for lpn in range(20):
        wants = ra.observe(1, lpn)
        assert not (set(wants) & seen), "page proposed twice"
        seen.update(wants)


def test_drop_forgets_stream():
    ra = AdaptiveReadahead(init_window=4, max_window=64)
    for lpn in range(4):
        ra.observe(1, lpn)
    ra.drop(1)
    assert ra.window_of(1) == 4


def test_constructor_validation():
    with pytest.raises(ValueError):
        AdaptiveReadahead(init_window=0)
    with pytest.raises(ValueError):
        AdaptiveReadahead(init_window=8, max_window=4)
    with pytest.raises(ValueError):
        AdaptiveReadahead(trigger=0)
