"""Quantile estimation accuracy: DDSketch-style sketches and log2 histograms.

The sketch's contract is a *relative* error bound of ``alpha`` against the
exact quantile of the observed multiset; the log2 histogram's is a
log-linear interpolation that stays inside the bucket holding the exact
rank.  Both are checked against sorted-array references on seeded samples.
"""

import math
import random

import pytest

from repro.obsv.metrics import Log2Histogram, Registry
from repro.obsv.quantiles import (
    NULL_HUB,
    QUANTILE_LABELS,
    QuantileSketch,
    SketchHub,
)

QS = (0.5, 0.9, 0.95, 0.99, 0.999)


def _exact(sorted_vals, q):
    return sorted_vals[int(q * (len(sorted_vals) - 1))]


def _samples(n=5000, seed=7):
    rng = random.Random(seed)
    # lognormal latencies in the us..ms range, like the simulator produces
    return [rng.lognormvariate(0.0, 1.5) * 1e-4 for _ in range(n)]


# ---------------------------------------------------------------------------
# QuantileSketch
# ---------------------------------------------------------------------------

def test_sketch_relative_error_vs_sorted_reference():
    vals = _samples()
    sk = QuantileSketch("lat", alpha=0.02)
    for v in vals:
        sk.observe(v)
    vals.sort()
    for q in QS:
        exact = _exact(vals, q)
        est = sk.quantile(q)
        assert abs(est - exact) / exact <= sk.alpha + 1e-9, (q, est, exact)


def test_sketch_alpha_bound_holds_for_coarser_sketches():
    vals = _samples(2000, seed=11)
    for alpha in (0.01, 0.05):
        sk = QuantileSketch("lat", alpha=alpha)
        for v in vals:
            sk.observe(v)
        ref = sorted(vals)
        for q in QS:
            exact = _exact(ref, q)
            assert abs(sk.quantile(q) - exact) / exact <= alpha + 1e-9


def test_sketch_merge_equals_combined_stream():
    a_vals, b_vals = _samples(1500, seed=3), _samples(1500, seed=4)
    a, b, c = (QuantileSketch("x", alpha=0.02) for _ in range(3))
    for v in a_vals:
        a.observe(v)
        c.observe(v)
    for v in b_vals:
        b.observe(v)
        c.observe(v)
    a.merge(b)
    assert a.count == c.count == 3000
    assert a.zero_count == c.zero_count
    assert a.buckets == c.buckets
    assert a.min == c.min and a.max == c.max
    for q in QS:
        assert a.quantile(q) == c.quantile(q)


def test_sketch_merge_rejects_mismatched_gamma():
    a = QuantileSketch("x", alpha=0.02)
    b = QuantileSketch("x", alpha=0.05)
    with pytest.raises(ValueError):
        a.merge(b)


def test_sketch_zero_bucket_and_empty_edges():
    sk = QuantileSketch("z")
    assert sk.quantile(0.5) == 0.0  # empty
    for _ in range(9):
        sk.observe(0.0)
    sk.observe(1e-3)
    assert sk.zero_count == 9
    assert sk.quantile(0.5) == 0.0  # rank inside the zero bucket
    assert abs(sk.quantile(1.0) - 1e-3) / 1e-3 <= sk.alpha
    with pytest.raises(ValueError):
        sk.quantile(1.5)
    with pytest.raises(ValueError):
        QuantileSketch("bad", alpha=1.0)


def test_sketch_index_memo_does_not_change_results():
    class TinyMemo(QuantileSketch):
        _MEMO_MAX = 4

    vals = _samples(800, seed=9)
    plain, tiny = QuantileSketch("a"), TinyMemo("b")
    for v in vals:
        plain.observe(v)
        tiny.observe(v)
    assert plain.buckets == tiny.buckets
    assert len(tiny._idx_memo) <= TinyMemo._MEMO_MAX
    for q in QS:
        assert plain.quantile(q) == tiny.quantile(q)


def test_sketch_snapshot_labels():
    sk = QuantileSketch("s")
    for v in (1e-5, 2e-5, 3e-5):
        sk.observe(v)
    snap = sk.snapshot()
    assert snap["count"] == 3.0
    for label, q in QUANTILE_LABELS:
        assert snap[label] == sk.quantile(q)


def test_sketch_same_stream_is_bit_identical():
    s1, s2 = QuantileSketch("d"), QuantileSketch("d")
    for v in _samples(1000, seed=21):
        s1.observe(v)
    for v in _samples(1000, seed=21):
        s2.observe(v)
    assert s1.buckets == s2.buckets
    assert s1.snapshot() == s2.snapshot()


# ---------------------------------------------------------------------------
# SketchHub
# ---------------------------------------------------------------------------

def test_hub_creates_sketches_lazily_and_collects_microseconds():
    hub = SketchHub(alpha=0.02)
    for _ in range(100):
        hub.observe("kv.rpc.get", 50e-6)
    hub.observe("net.send", 5e-6)
    assert hub.names() == ["kv.rpc.get", "net.send"]
    assert hub.total("kv.rpc.get") == pytest.approx(100 * 50e-6)
    assert hub.total("missing") == 0.0
    assert hub.quantile("missing", 0.99, default=-1.0) == -1.0
    snap = hub.collect()
    assert snap["lat.kv.rpc.get.count"] == 100
    assert snap["lat.net.send.count"] == 1
    for label, _ in QUANTILE_LABELS:
        assert f"lat.kv.rpc.get.{label}" in snap
    # us scaling with the sketch's relative error
    assert snap["lat.kv.rpc.get.p99"] == pytest.approx(50.0, rel=0.03)


def test_hub_subscribers_see_every_observation():
    hub = SketchHub()
    seen = []
    hub.subscribe(lambda name, s: seen.append((name, s)))
    hub.observe("a", 1e-6)
    hub.observe("b", 2e-6)
    assert seen == [("a", 1e-6), ("b", 2e-6)]


def test_hub_feeds_registry_snapshot():
    reg = Registry("t")
    hub = SketchHub()
    reg.collect(hub.collect)
    hub.observe("client.read", 10e-6)
    snap = reg.snapshot()
    assert snap["lat.client.read.count"] == 1


def test_null_hub_is_inert():
    NULL_HUB.observe("x", 1.0)
    assert NULL_HUB.names() == []
    assert NULL_HUB.total("x") == 0.0
    assert NULL_HUB.quantile("x", 0.99, default=3.0) == 3.0
    assert NULL_HUB.collect() == {}
    assert not NULL_HUB.enabled


# ---------------------------------------------------------------------------
# Log2Histogram.quantile
# ---------------------------------------------------------------------------

def test_log2_quantile_stays_in_exact_quantile_bucket():
    rng = random.Random(13)
    h = Log2Histogram("lat_us", scale=1.0)
    vals = [rng.lognormvariate(3.0, 1.2) for _ in range(4000)]
    for v in vals:
        h.observe(v)
    vals.sort()
    for q in QS:
        exact = _exact(vals, q)
        lo, hi = Log2Histogram.bucket_bounds(Log2Histogram.bucket_index(exact))
        if hi == math.inf:
            hi = 2.0 * lo
        est = h.quantile(q)
        assert lo <= est <= hi, (q, est, exact, lo, hi)


def test_log2_quantile_is_monotone_and_handles_edges():
    h = Log2Histogram("x")
    assert h.quantile(0.5) == 0.0
    for v in (1.0, 3.0, 9.0, 40.0, 900.0):
        h.observe(v)
    qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
    assert qs == sorted(qs)
    with pytest.raises(ValueError):
        h.quantile(-0.1)


def test_log2_quantiles_appear_in_registry_snapshot():
    reg = Registry("t")
    h = reg.histogram("lat", scale=1e6)
    for v in (10e-6, 20e-6, 30e-6, 400e-6):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["lat.p50"] == h.quantile(0.50)
    assert snap["lat.p99"] == h.quantile(0.99)
    assert snap["lat.count"] == 4
