"""Metrics registry: instruments, histogram buckets, snapshot determinism."""

import pytest

from repro.obsv.metrics import Log2Histogram, Registry


def test_counter_and_gauge_basics():
    reg = Registry()
    reg.counter("a").inc()
    reg.counter("a").inc(4)
    reg.gauge("g").set(2.5)
    snap = reg.snapshot()
    assert snap["a"] == 5
    assert snap["g"] == 2.5


def test_kind_mismatch_raises():
    reg = Registry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_histogram_bucket_boundaries():
    # bucket 0 absorbs [0, 2); bucket i is [2**i, 2**(i+1)).
    assert Log2Histogram.bucket_index(0.0) == 0
    assert Log2Histogram.bucket_index(0.999) == 0
    assert Log2Histogram.bucket_index(1.0) == 0
    assert Log2Histogram.bucket_index(1.999) == 0
    assert Log2Histogram.bucket_index(2.0) == 1
    assert Log2Histogram.bucket_index(3.999) == 1
    assert Log2Histogram.bucket_index(4.0) == 2
    assert Log2Histogram.bucket_index(2.0**31) == Log2Histogram.NBUCKETS - 1
    assert Log2Histogram.bucket_index(2.0**40) == Log2Histogram.NBUCKETS - 1


def test_histogram_bucket_bounds_cover_index():
    for i in range(Log2Histogram.NBUCKETS):
        lo, hi = Log2Histogram.bucket_bounds(i)
        assert lo < hi
        if i > 0:
            # the lower bound lands in its own bucket
            assert Log2Histogram.bucket_index(lo) == i


def test_histogram_observe_scale_and_snapshot_expansion():
    reg = Registry()
    h = reg.histogram("lat_us", scale=1e6)  # seconds in, microseconds bucketed
    h.observe(3e-6)   # 3us -> bucket 1
    h.observe(3e-6)
    h.observe(100e-6)  # 100us -> bucket 6
    snap = reg.snapshot()
    assert snap["lat_us.count"] == 3
    assert snap["lat_us.bucket.01"] == 2
    assert snap["lat_us.bucket.06"] == 1
    assert abs(snap["lat_us.mean"] - (3 + 3 + 100) / 3) < 1e-9


def test_snapshot_is_sorted_and_deterministic():
    def build():
        reg = Registry()
        reg.counter("z.last").inc(1)
        reg.counter("a.first").inc(2)
        reg.collect(lambda: {"m.pulled": 7})
        return reg

    s1, s2 = build().snapshot(), build().snapshot()
    assert s1 == s2
    assert list(s1) == sorted(s1)


def test_collectors_win_name_collisions():
    reg = Registry()
    reg.counter("dup").inc(1)
    reg.collect(lambda: {"dup": 99})
    assert reg.snapshot()["dup"] == 99


def test_delta():
    old = {"a": 1, "b": 2}
    new = {"a": 4, "b": 2, "c": 5}
    d = Registry.delta(new, old)
    assert d == {"a": 3, "b": 0, "c": 5}
    assert Registry.delta(new, None) == new
