"""SloEngine semantics: burn-rate math, breach conditions, attribution."""

import pytest

from repro.obsv.quantiles import SketchHub
from repro.obsv.slo import SloEngine, SloSpec, sketch_layer_sources

MS = 1e-3
US = 1e-6


class Clock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


def make_engine(clock, windows=(10 * MS,), target=0.9, threshold_us=100.0,
                eval_interval=MS, sources=None, **kw):
    spec = SloSpec(
        name="read",
        endpoint="client.read",
        threshold_us=threshold_us,
        target_quantile=target,
        windows=windows,
    )
    return spec, SloEngine(
        [spec], now_fn=clock.now, eval_interval=eval_interval,
        sources=sources, **kw,
    )


def test_spec_budget_is_one_minus_target():
    spec = SloSpec("s", "ep", threshold_us=1.0, target_quantile=0.95)
    assert spec.budget == pytest.approx(0.05)


def test_burn_rate_is_bad_fraction_over_budget():
    clock = Clock()
    # one 20ms window covers the whole stream at every evaluation instant;
    # the 0.7ms eval cadence never lands exactly on an observation time
    _, eng = make_engine(clock, windows=(20 * MS,), eval_interval=0.7 * MS)
    for i in range(10):
        clock.t = (i + 1) * MS
        # 2 of 10 observations over the 100us threshold
        eng.record("client.read", 200 * US if i >= 8 else 50 * US)
    eng.finish(11 * MS)
    s = eng.summary()["read"]
    assert s["observations"] == 10 and s["bad"] == 2
    assert s["burn_rate"] == pytest.approx((2 / 10) / 0.1)  # = 2.0
    # 2 bad vs 1 allowed (0.1 * 10): budget overdrawn by 2x
    assert s["budget_remaining"] == pytest.approx(1.0 - 2 / 1.0)


def test_no_breach_below_breach_burn():
    clock = Clock()
    # breach_burn defaults to 2.0; this stream peaks at burn == 1.0
    _, eng = make_engine(clock, windows=(20 * MS,), eval_interval=0.7 * MS)
    for i in range(10):
        clock.t = (i + 1) * MS
        eng.record("client.read", 200 * US if i >= 9 else 50 * US)
    eng.finish(11 * MS)
    assert eng.summary()["read"]["burn_rate"] == pytest.approx(1.0)
    assert eng.breaches() == []


def test_breach_logged_when_every_window_burns_hot():
    clock = Clock()
    _, eng = make_engine(clock, windows=(5 * MS, 20 * MS))
    for i in range(10):
        clock.t = 16 * MS + i * 0.4 * MS  # all inside both windows
        eng.record("client.read", 500 * US)  # 100% bad -> burn 10
    eng.finish(20 * MS)
    breaches = eng.breaches()
    assert breaches
    b = breaches[0]
    assert b["slo"] == "read"
    assert len(b["burn_rates"]) == 2
    assert all(r > 2.0 for r in b["burn_rates"])
    assert eng.summary()["read"]["breaches"] == len(breaches)


def test_no_breach_while_long_window_is_cool():
    # the same stream: 17.5ms of good traffic, then a ~1ms hot blip
    def drive(windows):
        clock = Clock()
        _, eng = make_engine(clock, windows=windows)
        for i in range(35):
            clock.t = (i + 1) * 0.5 * MS
            eng.record("client.read", 10 * US)
        for i in range(8):
            clock.t = 17.5 * MS + (i + 1) * 0.12 * MS
            eng.record("client.read", 500 * US)
        eng.finish(19 * MS)
        return eng

    # a short-window-only objective pages on the blip...
    assert drive((2 * MS,)).breaches()
    # ...but the long window dilutes it below breach_burn, so no page
    assert drive((2 * MS, 20 * MS)).breaches() == []


def test_min_events_suppresses_thin_window_breaches():
    clock = Clock()
    _, eng = make_engine(clock, min_events=5)
    for i in range(3):  # 3 bad events: hot burn but too thin
        clock.t = (i + 1) * MS
        eng.record("client.read", 500 * US)
    eng.finish(10 * MS)
    assert eng.summary()["read"]["burn_rate"] == pytest.approx(10.0)
    assert eng.breaches() == []


def test_bottleneck_attribution_names_fastest_growing_source():
    clock = Clock()
    # cumulative per-layer time grows with the clock; disk grows 50x faster
    sources = {"net": lambda: clock.t * 0.01, "disk": lambda: clock.t * 0.5}
    _, eng = make_engine(clock, sources=sources)
    for i in range(10):
        clock.t = (i + 1) * MS
        eng.record("client.read", 500 * US)
    eng.finish(10 * MS)
    breaches = eng.breaches()
    assert breaches and breaches[0]["bottleneck"] == "disk"
    assert eng.summary()["read"]["bottleneck"] == "disk"


def test_attribution_without_growth_is_none():
    clock = Clock()
    sources = {"net": lambda: 0.0}
    _, eng = make_engine(clock, sources=sources)
    for i in range(10):
        clock.t = (i + 1) * MS
        eng.record("client.read", 500 * US)
    eng.finish(10 * MS)
    assert all(b["bottleneck"] == "none" for b in eng.breaches())


def test_collect_emits_slo_gauges():
    clock = Clock()
    _, eng = make_engine(clock)
    for i in range(10):
        clock.t = (i + 1) * MS
        eng.record("client.read", 500 * US)
    eng.finish(10 * MS)
    out = eng.collect()
    assert out["slo.read.burn_rate"] == pytest.approx(10.0)
    assert out["slo.read.breaches"] >= 1
    assert out["slo.read.budget_remaining"] < 0  # budget overdrawn


def test_unmatched_endpoints_still_drive_evaluation():
    clock = Clock()
    _, eng = make_engine(clock)
    for i in range(5):
        clock.t = (i + 1) * MS
        eng.record("kv.rpc.get", 1 * US)  # no spec watches this endpoint
    eng.finish(5 * MS)
    assert eng.evals > 0
    s = eng.summary()["read"]
    assert s["observations"] == 0 and s["burn_rate"] == 0.0
    assert s["budget_remaining"] == 1.0


def test_engine_taps_hub_subscription():
    clock = Clock()
    hub = SketchHub()
    _, eng = make_engine(clock)
    eng.connect(hub)
    for i in range(10):
        clock.t = (i + 1) * MS
        hub.observe("client.read", 500 * US)
    eng.finish(10 * MS)
    assert eng.summary()["read"]["observations"] == 10
    assert eng.breaches()


def test_sketch_layer_sources_telescopes_include_minus_exclude():
    hub = SketchHub()
    hub.observe("stripe.read", 30 * US)
    hub.observe("stripe.read", 10 * US)
    hub.observe("ds.rpc", 25 * US)
    layers = {
        "ec": (("stripe.read", "stripe.write"), ("ds.rpc",)),
        "ds": (("ds.rpc",), ()),
    }
    sources = sketch_layer_sources(hub, layers)
    assert sources["ec"]() == pytest.approx(15 * US)
    assert sources["ds"]() == pytest.approx(25 * US)
    hub.observe("ds.rpc", 5 * US)
    assert sources["ec"]() == pytest.approx(10 * US)


def test_same_stream_yields_identical_breach_logs():
    def drive():
        clock = Clock()
        totals = {"a": 0.0}

        def tick():
            totals["a"] += 1 * US
            return totals["a"]

        _, eng = make_engine(clock, sources={"a": tick})
        for i in range(20):
            clock.t = (i + 1) * 0.7 * MS
            eng.record("client.read", (500 if i % 3 else 20) * US)
        eng.finish(15 * MS)
        return eng.breaches(), eng.summary()

    assert drive() == drive()
