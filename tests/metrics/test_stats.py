"""LatencyRecorder percentiles, caching, and ResultTable normalization."""

import numpy as np

from repro.metrics.stats import LatencyRecorder, ResultTable


def test_empty_recorder_is_all_zeros():
    lat = LatencyRecorder()
    assert len(lat) == 0
    assert lat.mean == 0.0
    assert lat.p50 == 0.0
    assert lat.p99 == 0.0
    assert lat.p999 == 0.0
    assert lat.max == 0.0
    assert lat.summary() == {
        "count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0,
    }


def test_percentiles_match_numpy():
    lat = LatencyRecorder()
    samples = [((i * 7919) % 1000) * 1e-6 for i in range(1000)]
    for s in samples:
        lat.add(s)
    arr = np.asarray(samples)
    for q, got in ((50, lat.p50), (99, lat.p99), (99.9, lat.p999)):
        assert got == float(np.percentile(arr, q))
    assert lat.max == max(samples)
    assert abs(lat.mean - arr.mean()) < 1e-15


def test_single_sample():
    lat = LatencyRecorder()
    lat.add(3e-6)
    assert lat.p50 == lat.p99 == lat.p999 == lat.max == 3e-6


def test_add_invalidates_sorted_cache():
    lat = LatencyRecorder()
    lat.add(5e-6)
    assert lat.p99 == 5e-6  # forces the sort + cache
    lat.add(1e-6)  # smaller sample lands after the cached sort
    assert lat.p50 == 3e-6
    assert lat.max == 5e-6
    lat.add(9e-6)
    assert lat.max == 9e-6


def test_summary_keys_and_ordering():
    lat = LatencyRecorder()
    for v in (4e-6, 1e-6, 8e-6, 2e-6):
        lat.add(v)
    s = lat.summary()
    assert s["count"] == 4
    assert s["p50"] <= s["p99"] <= s["p999"] <= s["max"] == 8e-6


def test_result_table_normalizes_numpy_scalars():
    t = ResultTable("t", ["a", "b", "c"])
    t.add_row(np.float32(1.23456789), np.int64(7), np.float64(2.5))
    a, b, c = t.rows[0]
    assert type(a) is float and type(b) is int and type(c) is float
    rendered = t.render()
    # float formatting (%.4g) must apply to values that arrived as numpy
    assert "1.235" in rendered
    assert "2.5" in rendered


def test_result_table_rejects_wrong_arity():
    t = ResultTable("t", ["a", "b"])
    try:
        t.add_row(1)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")
