"""Tail-based trace sampling: sampler rules, kept-tree completeness, and
bit-identical determinism of the sampled observability surface."""

import pytest

from repro.experiments.fig9_dfs import run_case
from repro.obsv import disable_tracing, enable_tracing
from repro.obsv.tracer import TailSampler
from repro.params import default_params

US = 1e-6


# ---------------------------------------------------------------------------
# TailSampler unit rules
# ---------------------------------------------------------------------------

def test_sampler_warmup_keeps_early_roots():
    s = TailSampler(quantile=0.9, baseline=10**9, warmup=4)
    assert s.threshold("op") is None
    for _ in range(4):
        assert s.admit("op", 10 * US)
    assert s.threshold("op") == pytest.approx(10 * US, rel=0.03)


def test_sampler_keeps_tail_drops_bulk():
    s = TailSampler(quantile=0.9, baseline=10**9, warmup=4)
    for _ in range(4):
        s.admit("op", 10 * US)  # warmup history at 10us
    assert not s.admit("op", 9 * US)   # under the p90 of history -> dropped
    assert s.admit("op", 100 * US)     # a 10x outlier -> kept as tail
    assert s.tail_kept == 1
    assert s.dropped == 1


def test_sampler_baseline_one_in_n_floor():
    # strictly geometrically decreasing durations: every post-warmup sample
    # sits far below its prior history's p90, so only the baseline keeps
    s = TailSampler(quantile=0.9, baseline=5, warmup=3)
    kept = [s.admit("op", 100 * US * 0.8 ** i) for i in range(23)]
    assert kept == [i < 3 or i % 5 == 0 for i in range(23)]
    assert s.tail_kept == 0
    assert s.baseline_kept == 5  # i = 0, 5, 10, 15, 20


def test_sampler_threshold_read_before_observe():
    # the decision must use the *prior* history: p50 of {10, 1000, 1000}us
    # is ~1000us, so a 100us sample is dropped.  Had the sample been folded
    # in first, the p50 would land on its own bucket and keep it.
    s = TailSampler(quantile=0.5, baseline=10**9, warmup=3)
    for d in (10 * US, 1000 * US, 1000 * US):
        s.admit("op", d)
    assert not s.admit("op", 100 * US)
    assert s.dropped == 1


def test_sampler_tracks_names_independently():
    s = TailSampler(quantile=0.9, baseline=10**9, warmup=2)
    for _ in range(2):
        s.admit("read", 10 * US)
        s.admit("write", 1000 * US)
    # 50us: tail for "read" history, bulk for "write" history
    assert s.admit("read", 50 * US)
    assert not s.admit("write", 50 * US)


def test_sampler_validates_quantile():
    with pytest.raises(ValueError):
        TailSampler(quantile=1.0)


# ---------------------------------------------------------------------------
# end-to-end on fig9 (DPC system, rnd-wr)
# ---------------------------------------------------------------------------

def _traced_fig9(tail: bool, nthreads=4, ops_per_thread=8):
    p = default_params().with_overrides(
        obsv_sketches=True, obsv_tail_sample=tail
    )
    ctx = enable_tracing()
    try:
        out = run_case("dpc", "rnd-wr", nthreads=nthreads,
                       ops_per_thread=ops_per_thread, params=p)
        name, tracer, registry = ctx.systems[0]
        lat_snap = {
            k: v for k, v in registry.snapshot().items()
            if k.startswith("lat.")
        }
        return out, tracer, lat_snap
    finally:
        disable_tracing()


def test_tail_sampling_drops_bulk_keeps_complete_outlier_trees():
    out, tracer, _ = _traced_fig9(tail=True)
    sampler = tracer.sampler
    assert sampler is not None
    assert sampler.kept + sampler.dropped == 32  # every client root decided
    assert sampler.dropped > 0  # the bulk actually gets dropped
    spans = tracer.spans
    by_parent = tracer.children_index()
    ids = {s.span_id for s in spans}
    client_roots = [
        s for s in spans
        if s.track == "client" and (s.parent_id is None or s.parent_id not in ids)
    ]
    assert len(client_roots) == sampler.kept
    for root in client_roots:
        tracks = set()
        stack = [root]
        while stack:
            s = stack.pop()
            tracks.add(s.track)
            assert s.end is not None  # kept trees are complete
            stack.extend(by_parent.get(s.span_id, ()))
        # every kept op carries its full cross-layer story
        assert len(tracks) >= 4, (root.name, sorted(tracks))


def test_tail_decisions_replay_from_unsampled_trace():
    # replay the full (unsampled) trace's client roots through a fresh
    # sampler with the testbed's parameters: the predicted keep set must be
    # exactly the roots that survived in the sampled run — i.e. every op the
    # policy says is above threshold (or baseline/warmup) kept its tree
    _, tr_full, _ = _traced_fig9(tail=False)
    _, tr_tail, _ = _traced_fig9(tail=True)
    p = default_params()
    replay = TailSampler(
        quantile=p.obsv_tail_quantile,
        baseline=p.obsv_tail_baseline,
        warmup=p.obsv_tail_warmup,
        alpha=p.obsv_sketch_alpha,
    )
    predicted = set()
    for s in tr_full.spans:  # completion order, same as the live run
        if s.track == "client" and s.parent_id is None:
            if replay.admit(s.name, s.duration):
                predicted.add(s.span_id)
    kept = {
        s.span_id for s in tr_tail.spans
        if s.track == "client" and s.parent_id is None
    }
    assert kept == predicted
    assert tr_tail.sampler.threshold("op") is not None


def test_tail_sampled_runs_are_bit_identical_at_same_seed():
    out1, tr1, snap1 = _traced_fig9(tail=True)
    out2, tr2, snap2 = _traced_fig9(tail=True)
    assert tr1.signature() == tr2.signature()
    assert snap1 == snap2  # sketch snapshots bit-identical
    assert out1 == out2
    s1, s2 = tr1.sampler, tr2.sampler
    assert (s1.kept, s1.dropped, s1.tail_kept, s1.baseline_kept) == (
        s2.kept, s2.dropped, s2.tail_kept, s2.baseline_kept
    )


def test_sampling_does_not_change_simulated_results():
    out_full, tr_full, snap_full = _traced_fig9(tail=False)
    out_tail, tr_tail, snap_tail = _traced_fig9(tail=True)
    # sampling only drops recorded spans; timing and sketches are untouched
    assert out_tail == out_full
    assert snap_tail == snap_full
    assert tr_full.sampler is None
    assert len(tr_tail.spans) < len(tr_full.spans)
    # the kept spans are a subset of the full trace (same ids, same times)
    full_by_id = {s.span_id: s for s in tr_full.spans}
    for s in tr_tail.spans:
        ref = full_by_id[s.span_id]
        assert (s.name, s.track, s.start, s.end) == (
            ref.name, ref.track, ref.start, ref.end
        )


def test_sketch_p99_matches_exact_p99_on_fig9():
    out, _, snap = _traced_fig9(tail=False, nthreads=8, ops_per_thread=25)
    exact = out["lat_p99_us"]
    sketch = snap["lat.client.op.p99"]
    assert exact > 0
    # sketch alpha is 0.02; allow 2x for the us rounding in the collector
    assert abs(sketch - exact) / exact <= 0.05, (sketch, exact)
