"""Span tracer semantics, Perfetto export validity, and e2e trace trees."""

from repro.core.testbeds import build_dpc_system, build_raw_transport
from repro.host.adapters import O_DIRECT
from repro.host.vfs import O_CREAT
from repro.obsv import disable_tracing, enable_tracing
from repro.obsv.export import to_chrome_trace, validate_trace, write_trace_multi
from repro.obsv.report import layer_breakdown
from repro.obsv.tracer import NULL_TRACER, Tracer
from repro.sim.core import Environment


# ---------------------------------------------------------------------------
# tracer unit semantics
# ---------------------------------------------------------------------------

def test_null_tracer_is_inert():
    sp = NULL_TRACER.span("x", track="host", foo=1)
    with sp as s:
        s.set(bar=2).reparent(None)
    NULL_TRACER.instant("i")
    NULL_TRACER.handoff(("k",))
    assert NULL_TRACER.adopt(("k",)) is None
    assert NULL_TRACER.spans == [] and NULL_TRACER.instants == []
    assert not NULL_TRACER.enabled


def test_span_nesting_and_attrs():
    env = Environment(seed=1)
    tr = Tracer(env)

    def flow():
        with tr.span("outer", track="host"):
            yield env.timeout(1e-6)
            with tr.span("inner", track="dpu", qid=3) as sp:
                yield env.timeout(2e-6)
                sp.set(hit=True)

    env.run(until=env.process(flow()))
    inner, outer = tr.spans  # completion order
    assert inner.name == "inner" and outer.name == "outer"
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.attrs == {"qid": 3, "hit": True}
    assert abs(inner.duration - 2e-6) < 1e-12
    assert abs(outer.duration - 3e-6) < 1e-12


def test_concurrent_processes_do_not_share_stacks():
    env = Environment(seed=1)
    tr = Tracer(env)

    def worker(name, delay):
        with tr.span(name, track="client", parent=None):
            yield env.timeout(delay)
            with tr.span(f"{name}-child", track="net"):
                yield env.timeout(delay)

    procs = [env.process(worker(f"w{i}", (i + 1) * 1e-6)) for i in range(3)]
    env.run(until=env.all_of(procs))
    by_name = {s.name: s for s in tr.spans}
    for i in range(3):
        assert by_name[f"w{i}-child"].parent_id == by_name[f"w{i}"].span_id


def test_handoff_adopt_is_one_shot():
    env = Environment(seed=1)
    tr = Tracer(env)

    def flow():
        with tr.span("producer", track="host") as sp:
            tr.handoff(("q", 7))
            yield env.timeout(1e-6)
        adopted = tr.adopt(("q", 7))
        assert adopted is sp
        assert tr.adopt(("q", 7)) is None

    env.run(until=env.process(flow()))


def test_bind_seeds_spawned_process_stack():
    env = Environment(seed=1)
    tr = Tracer(env)

    def child():
        with tr.span("child", track="net"):
            yield env.timeout(1e-6)

    def parent():
        with tr.span("parent", track="dfs", parent=None):
            procs = [env.process(child()) for _ in range(2)]
            for p in procs:
                tr.bind(p)
            yield env.all_of(procs)

    env.run(until=env.process(parent()))
    parent_span = next(s for s in tr.spans if s.name == "parent")
    kids = [s for s in tr.spans if s.name == "child"]
    assert len(kids) == 2
    assert all(k.parent_id == parent_span.span_id for k in kids)


def test_signature_stamps_everything():
    env = Environment(seed=1)
    tr = Tracer(env)

    def flow():
        with tr.span("a", track="host"):
            yield env.timeout(1e-6)
        tr.instant("tick", track="pcie", tag="x")

    env.run(until=env.process(flow()))
    spans, inst = tr.signature()
    assert len(spans) == 1 and len(inst) == 1


# ---------------------------------------------------------------------------
# end-to-end: one traced 4 KiB write through the full DPC stack
# ---------------------------------------------------------------------------

def _traced_write(with_dfs: bool):
    sys = build_dpc_system(with_dfs=with_dfs, trace=True)
    path = "/dfs/f" if with_dfs else "/kvfs/f"

    def flow():
        f = yield from sys.vfs.open(path, O_CREAT | O_DIRECT)
        with sys.tracer.span("op", track="client", parent=None):
            yield from sys.vfs.write(f, 0, b"\x5a" * 4096)

    sys.run_until(flow())
    return sys


def test_traced_write_produces_connected_multilayer_tree():
    sys = _traced_write(with_dfs=True)
    tr = sys.tracer
    op = next(s for s in tr.spans if s.name == "op")
    children = tr.children_index()
    reachable_tracks = set()
    stack = [op.span_id]
    nodes = 0
    while stack:
        sid = stack.pop()
        nodes += 1
        sp = next(s for s in tr.spans if s.span_id == sid)
        reachable_tracks.add(sp.track)
        stack.extend(c.span_id for c in children.get(sid, ()))
    # one write crosses at least: client, host, transport, dpu, dfs, net
    assert len(reachable_tracks) >= 4, reachable_tracks
    assert {"client", "host", "transport", "dpu"} <= reachable_tracks
    assert nodes >= 5


def test_traced_write_chrome_trace_is_schema_valid():
    sys = _traced_write(with_dfs=True)
    events = to_chrome_trace(sys.tracer)
    assert validate_trace(events) == []
    # doorbell/interrupt instants made it onto the pcie track
    names = {e["name"] for e in events if e["ph"] == "i"}
    assert "doorbell" in names and "interrupt" in names


def test_layer_breakdown_reconciles_with_e2e():
    sys = _traced_write(with_dfs=True)
    bd = layer_breakdown(sys.tracer)
    assert bd["ops"] == 1
    assert bd["e2e"] > 0
    total = sum(bd["by_track"].values())
    assert abs(total - bd["e2e"]) <= 0.01 * bd["e2e"]


def test_tracing_does_not_perturb_simulated_time():
    def run(trace):
        sys = build_dpc_system(with_dfs=False, trace=trace)

        def flow():
            f = yield from sys.vfs.open("/kvfs/f", O_CREAT | O_DIRECT)
            for i in range(4):
                yield from sys.vfs.write(f, i * 4096, b"\x5a" * 4096)

        sys.run_until(flow())
        return sys.env.now

    assert run(False) == run(True)


# ---------------------------------------------------------------------------
# determinism + registry equivalence
# ---------------------------------------------------------------------------

def _fig9_signatures():
    from repro.experiments.fig9_dfs import run_case

    ctx = enable_tracing()
    try:
        run_case("dpc", "rnd-wr", nthreads=2, ops_per_thread=3)
        return [t.signature() for t in ctx.tracers()]
    finally:
        disable_tracing()


def test_same_seed_fig9_runs_emit_identical_trace_signatures():
    s1 = _fig9_signatures()
    s2 = _fig9_signatures()
    assert s1 and s1 == s2


def test_registry_matches_hot_path_stats():
    rig = build_raw_transport("nvme-fs")

    def flow():
        yield from rig.adapter.write(1, 0, b"\x5a" * 8192, 0)

    rig.run_until(flow())
    snap = rig.registry.snapshot()
    s = rig.link.stats
    assert snap["pcie.ops"] == s.ops()
    assert snap["pcie.doorbells"] == s.doorbells
    assert snap["pcie.interrupts"] == s.interrupts
    assert snap["cpu.host.cores"] == rig.host_cpu.cores
    assert snap["cpu.host.busy"] == rig.host_cpu.busy_seconds
    for tag, n in s.by_tag.items():
        assert snap[f"pcie.by_tag.{tag}"] == n


def test_write_trace_multi_keeps_pid_namespaces(tmp_path):
    import json

    ctx = enable_tracing()
    try:
        _traced_write(with_dfs=False)
        sys2 = _traced_write(with_dfs=False)
        assert sys2.tracer in ctx.tracers()
        traced = [(n, t) for n, t, _ in ctx.systems]
        path = tmp_path / "trace.json"
        events = write_trace_multi(traced, path)
        assert validate_trace(events) == []
        assert validate_trace(json.loads(path.read_text())) == []
        assert {e["pid"] for e in events if e["ph"] == "X"} == {1, 2}
    finally:
        disable_tracing()
