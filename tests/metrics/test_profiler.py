"""DES self-profiler, loop-speed accounting, and the BENCH envelope."""

import json

import pytest

from repro.experiments.bench import SCHEMA_VERSION, envelope, write_envelope
from repro.obsv.profiler import SimProfiler, _site_of
from repro.sim.core import LOOP_STATS, Environment


def _busy_flow(env, nworkers=8, rounds=40):
    def worker(i):
        for _ in range(rounds):
            yield env.timeout(1e-6 * (i + 1))

    return [env.process(worker(i), name=f"w{i}") for i in range(nworkers)]


# ---------------------------------------------------------------------------
# SimProfiler
# ---------------------------------------------------------------------------

def test_profiler_attributes_sites_and_counts_events():
    env = Environment(seed=1)
    prof = SimProfiler().install(env)
    procs = _busy_flow(env)
    prof.start()
    env.run(until=env.all_of(procs))
    prof.stop()
    prof.uninstall()
    rep = prof.report()
    assert rep["events"] > 0 and rep["callbacks"] > 0
    assert rep["wall_clock_s"] > 0
    sites = {row["site"] for row in rep["sites"]}
    # per-thread clones collapse into one site: w0..w7 -> Process:wN
    assert "Process:wN" in sites
    assert not any(s.startswith("Process:w0") for s in sites)
    total_site_s = sum(row["seconds"] for row in rep["sites"])
    assert rep["callback_s"] == pytest.approx(total_site_s)
    # attributed + kernel never exceeds the profiled wall clock
    assert rep["callback_s"] + rep["kernel_s"] <= rep["wall_clock_s"] * 1.01
    assert 0.0 < rep["coverage"] <= 1.01


def test_profiler_coverage_meets_attribution_floor():
    env = Environment(seed=2)
    prof = SimProfiler().install(env)
    procs = _busy_flow(env, nworkers=16, rounds=200)
    prof.start()
    env.run(until=env.all_of(procs))
    prof.stop()
    prof.uninstall()
    rep = prof.report()
    # the acceptance bar is >= 90% on the full simspeed run; a synthetic
    # micro-run keeps a margin for scheduler noise
    assert rep["coverage"] >= 0.8, rep["coverage"]


def test_profiler_does_not_perturb_simulated_time():
    def run(profiled: bool):
        env = Environment(seed=3)
        procs = _busy_flow(env, nworkers=4, rounds=20)
        prof = SimProfiler().install(env) if profiled else None
        env.run(until=env.all_of(procs))
        if prof is not None:
            prof.uninstall()
        return env.now

    assert run(False) == run(True)


def test_profiler_double_install_rejected():
    env = Environment(seed=1)
    prof = SimProfiler().install(env)
    with pytest.raises(RuntimeError):
        SimProfiler().install(env)
    prof.uninstall()
    assert env._profiler is None


def test_profiler_report_top_and_render():
    env = Environment(seed=4)
    with SimProfiler().install(env) as prof:
        env.run(until=env.all_of(_busy_flow(env)))
    assert len(prof.report(top=1)["sites"]) == 1
    text = prof.render()
    assert "coverage" in text and "kernel" in text


def test_site_naming_collapses_digit_runs():
    class Owner:
        name = "ds3-req17"

        def cb(self, ev):  # pragma: no cover - never called
            pass

    class Anon:
        name = ""

        def cb(self, ev):  # pragma: no cover - never called
            pass

    assert _site_of(Owner().cb) == "Owner:dsN-reqN"
    assert _site_of(Anon().cb) == "Anon.cb"


# ---------------------------------------------------------------------------
# LoopStats / envelope
# ---------------------------------------------------------------------------

def test_loop_stats_accumulate_across_runs():
    LOOP_STATS.reset()
    env = Environment(seed=5)
    env.run(until=env.all_of(_busy_flow(env, nworkers=4, rounds=10)))
    assert LOOP_STATS.runs == 1
    assert LOOP_STATS.events > 0
    assert LOOP_STATS.wall_s > 0
    assert LOOP_STATS.events_per_sec() > 0
    before = LOOP_STATS.events
    env2 = Environment(seed=5)
    env2.run(until=env2.all_of(_busy_flow(env2, nworkers=4, rounds=10)))
    assert LOOP_STATS.runs == 2 and LOOP_STATS.events == 2 * before


def test_envelope_shape_and_loop_stamp():
    LOOP_STATS.reset()
    env = Environment(seed=6)
    env.run(until=env.all_of(_busy_flow(env, nworkers=2, rounds=5)))
    out = envelope({"a/b": 1.5}, seed=6)
    assert out["schema"] == SCHEMA_VERSION == 2
    assert out["seed"] == 6
    assert isinstance(out["git_sha"], str) and out["git_sha"]
    assert out["wall_clock_s"] == round(LOOP_STATS.wall_s, 4)
    assert out["events_per_sec"] == round(LOOP_STATS.events_per_sec(), 1)
    assert out["metrics"] == {"a/b": 1.5}


def test_write_envelope_roundtrips(tmp_path):
    path = tmp_path / "BENCH_x.json"
    out = write_envelope("x", {"k": 1}, path=path)
    assert out == path
    data = json.loads(path.read_text())
    assert data["schema"] == 2 and data["metrics"] == {"k": 1}
    assert set(data) == {
        "schema", "seed", "git_sha", "wall_clock_s", "events_per_sec", "metrics",
    }
