"""End-to-end acceptance: mid-workload data-server loss, degraded EC reads.

The ISSUE's acceptance scenario: a striped DFS file is being read by
several client threads when a data server goes down.  Every read must
still return the bit-exact payload (reconstructed from any k surviving
shards), and the whole run — fault schedule, event trace, latencies —
must replay identically from the same master seed.
"""

import pytest

from repro.core.testbeds import build_host_dfs_clients
from repro.dfs.mds import DFS_ROOT_INO
from repro.params import default_params

SEEDS = [7, 23, 101]
NSTRIPES = 12
NTHREADS = 4
OPS = 10


def _payload(stripe_index: int, length: int) -> bytes:
    return bytes([(stripe_index * 7 + 1) & 0xFF]) * length


def _run(seed: int):
    """One full scenario; returns everything determinism must cover."""
    p = default_params().with_overrides(seed=seed)
    tb = build_host_dfs_clients(p)
    env, client, plane = tb.env, tb.opt_client, tb.fault_plane
    stripe = tb.layout.stripe_size

    def prep():
        attr = yield from client.create(DFS_ROOT_INO, b"victimfile")
        for s in range(NSTRIPES):
            yield from client.write(attr.ino, s * stripe, _payload(s, stripe))
        yield from client.flush_metadata()
        return attr.ino

    ino = tb.run_until(prep())

    # Fail-stop one data server mid-read-phase: readers in flight at that
    # instant fall onto the degraded EC path transparently.
    victim = tb.dataservers[2]
    plane.crash_at(env.now + 150e-6, victim)

    latencies = []
    bad = [0]

    def reader(tid: int):
        rng = env.substream(f"e2e:t{tid}")
        for _ in range(OPS):
            s = rng.randrange(NSTRIPES)
            t0 = env.now
            data = yield from client.read(ino, s * stripe, stripe)
            latencies.append(round(env.now - t0, 12))
            if data != _payload(s, stripe):
                bad[0] += 1

    procs = [env.process(reader(t), name=f"rd-t{t}") for t in range(NTHREADS)]
    env.run(until=env.all_of(procs))
    return {
        "bad": bad[0],
        "latencies": tuple(latencies),
        "end_time": env.now,
        "trace": plane.trace_signature(),
        "degraded": client.stripeio.degraded_stripes,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_degraded_reads_bit_exact_and_replayable(seed):
    first = _run(seed)
    second = _run(seed)
    # Bit-exact payloads despite the mid-workload server loss.
    assert first["bad"] == 0
    # The crash actually hit the measured phase and forced reconstruction.
    assert first["degraded"] > 0
    assert any(kind == "fail" for _, kind, _, _ in first["trace"])
    assert any(kind == "degraded-read" for _, kind, _, _ in first["trace"])
    # Same seed => identical fault schedule, event trace and timing.
    assert first == second


def test_different_seeds_diverge():
    a = _run(7)
    b = _run(23)
    assert a["latencies"] != b["latencies"] or a["trace"] != b["trace"]


def test_rebuild_repopulates_replaced_server():
    tb = build_host_dfs_clients()
    env, client = tb.env, tb.opt_client
    stripe = tb.layout.stripe_size
    nbytes = NSTRIPES * stripe
    victim_idx = 1
    victim = tb.dataservers[victim_idx]

    def prep():
        attr = yield from client.create(DFS_ROOT_INO, b"rebuildme")
        for s in range(NSTRIPES):
            yield from client.write(attr.ino, s * stripe, _payload(s, stripe))
        yield from client.flush_metadata()
        return attr.ino

    ino = tb.run_until(prep())
    units_before = len(victim.units)
    assert units_before > 0

    def scenario():
        # Data-losing crash: the server comes back up empty and must not be
        # trusted until background reconstruction repopulates it.
        victim.crash(lose_data=True)
        yield from victim.restart()
        assert len(victim.units) == 0
        rebuilt = yield from client.stripeio.rebuild_file(
            ino, nbytes, {victim_idx}
        )
        # Healthy full-file read after the rebuild: no degraded path needed.
        data = yield from client.read(ino, 0, nbytes)
        return rebuilt, data

    rebuilt, data = tb.run_until(scenario())
    assert data == b"".join(_payload(s, stripe) for s in range(NSTRIPES))
    assert rebuilt == units_before
    assert len(victim.units) == units_before
    assert client.stripeio.rebuilt_units == rebuilt
    assert client.stripeio.degraded_stripes == 0
