"""Crash / restart recovery: KV WAL replay, DS restarts, MDS lease expiry."""

import pytest

from repro.core.testbeds import build_host_dfs_clients
from repro.dfs.mds import DFS_ROOT_INO
from repro.fault import FaultPlane, retry_policy_from
from repro.kv.client import KvClient
from repro.kv.server import KvCluster
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric

MSG = 64


def build_kv(rpc_timeout=0.0, **overrides):
    p = default_params().with_overrides(rpc_timeout=rpc_timeout, **overrides)
    env = Environment(seed=p.seed)
    plane = FaultPlane(env)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    fabric.fault_plane = plane
    cluster = KvCluster(env, fabric, p)
    fabric.attach("cli")
    client = KvClient(
        fabric, "cli", cluster.shard_names(), retry=retry_policy_from(p), plane=plane
    )
    return env, plane, cluster, client


def test_kv_wal_replay_restores_data_at_cost():
    env, plane, cluster, client = build_kv()
    p = cluster.params
    keys = [f"wal{i:03d}".encode() for i in range(8)]

    def scenario():
        for i, k in enumerate(keys):
            yield from client.put(k, bytes([i + 1]) * 32)
        # Whole-cluster power loss while idle; volatile state evaporates.
        for shard in cluster.shards:
            shard.crash()
        t0 = env.now
        replayed = 0
        for shard in cluster.shards:
            replayed += yield from shard.restart()
        recovery_time = env.now - t0
        got = []
        for k in keys:
            got.append((yield from client.get(k)))
        return replayed, recovery_time, got

    replayed, recovery_time, got = env.run(until=env.process(scenario()))
    assert got == [bytes([i + 1]) * 32 for i in range(8)]
    # Every put is one WAL record, and replay is a costed clock event.
    assert replayed == 8
    assert recovery_time == pytest.approx(replayed * p.kv_wal_replay_per_entry)
    assert all(s.crashes == 1 for s in cluster.shards)


def test_crash_clears_staged_2pc_state():
    env, plane, cluster, client = build_kv()
    shard = cluster.shards[0]

    def scenario():
        ok = yield from client.fabric.rpc(
            "cli", shard.name, ("prepare", "tx1", [("put", b"pk", b"pv")]), MSG
        )
        assert ok is True
        assert shard._staged and shard._locks
        shard.crash()
        yield from shard.restart()
        # Locks and staged ops are volatile: gone after the crash, so a new
        # transaction can prepare the same keys immediately.
        assert not shard._staged and not shard._locks
        ok2 = yield from client.fabric.rpc(
            "cli", shard.name, ("prepare", "tx2", [("put", b"pk", b"pv2")]), MSG
        )
        yield from client.fabric.rpc("cli", shard.name, ("commit", "tx2"), MSG)
        return ok2

    ok2 = env.run(until=env.process(scenario()))
    assert ok2 is True
    assert shard.engine.get(b"pk") == b"pv2"


def test_inflight_put_survives_silent_shard_crash():
    env, plane, cluster, client = build_kv(rpc_timeout=400e-6)
    key = b"crashkey"
    shard = cluster.shards[cluster.shard_names().index(client.route(key))]
    # Silent crash 10us in (mid-service), restart shortly after: the client
    # only notices via its deadline, then the backoff'd retry lands.
    plane.crash_at(10e-6, shard, restart_at=300e-6, drop=True)

    def scenario():
        yield from client.put(key, b"survivor")
        value = yield from client.get(key)
        return value

    value = env.run(until=env.process(scenario()))
    assert value == b"survivor"
    assert client.retries >= 1
    assert shard.crashes == 1
    kinds = plane.counts()
    assert kinds.get("crash") == 1 and kinds.get("restart") == 1
    assert kinds.get("retry", 0) == client.retries


def test_dataserver_restart_pays_restart_delay():
    tb = build_host_dfs_clients()
    env, p = tb.env, tb.params
    ds = tb.dataservers[0]

    def scenario():
        ds.crash()
        t0 = env.now
        yield from ds.restart()
        return env.now - t0

    delay = tb.run_until(scenario())
    assert delay == pytest.approx(p.ds_restart_delay)
    assert not ds.failed and not ds.dropped


def test_delegation_lease_expires_and_is_recalled():
    tb = build_host_dfs_clients()
    env, p, fabric = tb.env, tb.params, tb.fabric
    home_name = tb.mds.home_of(DFS_ROOT_INO)
    server = next(s for s in tb.mds.servers if s.name == home_name)
    fabric.attach("cA")
    fabric.attach("cB")

    def acquire(src):
        resp = yield from fabric.rpc(
            src, home_name, ("deleg_acquire", DFS_ROOT_INO, "dir"), MSG
        )
        return resp

    def scenario():
        r1 = yield from acquire("cA")
        r2 = yield from acquire("cB")  # lease still live: denied
        yield env.timeout(p.deleg_lease + 1.0)
        r3 = yield from acquire("cB")  # expired: recalled + granted
        return r1, r2, r3

    r1, r2, r3 = tb.run_until(scenario())
    assert r1[0] == "granted" and r1[1]  # dir delegation carries an ino lease
    assert r2[0] == "denied"
    assert r3[0] == "granted"
    assert server.recalls == 1


def test_expire_client_force_revokes_delegations():
    tb = build_host_dfs_clients()
    fabric = tb.fabric
    home_name = tb.mds.home_of(DFS_ROOT_INO)
    server = next(s for s in tb.mds.servers if s.name == home_name)
    fabric.attach("cA")
    fabric.attach("cB")

    def scenario():
        r1 = yield from fabric.rpc(
            "cA", home_name, ("deleg_acquire", DFS_ROOT_INO, "dir"), MSG
        )
        assert r1[0] == "granted"
        # Fault script declares cA dead before its lease runs out.
        revoked = server.expire_client("cA")
        r2 = yield from fabric.rpc(
            "cB", home_name, ("deleg_acquire", DFS_ROOT_INO, "dir"), MSG
        )
        return revoked, r2

    revoked, r2 = tb.run_until(scenario())
    assert revoked == 1
    assert r2[0] == "granted"
    assert server.recalls == 1
