"""Circuit breaker state machine, cache write-through degrade, NVMe retries."""

from repro.core.testbeds import build_dpc_system
from repro.fault import CircuitBreaker
from repro.host.vfs import O_CREAT, O_DIRECT
from repro.params import default_params
from repro.proto.filemsg import Errno
from repro.sim.core import Environment


def test_breaker_state_machine():
    env = Environment(seed=1)
    br = CircuitBreaker(env, failure_threshold=3, reset_after=1e-3)
    assert br.state == "closed" and br.allow()
    br.record_failure()
    br.record_failure()
    assert br.state == "closed"  # below threshold
    br.record_failure()
    assert br.state == "open" and not br.allow()
    assert br.trips == 1
    # The open window expires on the simulated clock: half-open admits a probe.
    env.run(until=env.timeout(2e-3))
    assert br.state == "half-open" and br.allow()
    br.record_failure()  # probe fails: straight back to open
    assert br.state == "open" and br.trips == 2
    env.run(until=env.timeout(2e-3))
    assert br.state == "half-open"
    br.record_success()  # probe succeeds: closed, failure count reset
    assert br.state == "closed" and br.resets == 1
    br.record_failure()
    br.record_failure()
    assert br.state == "closed"


def test_open_breaker_degrades_cache_to_writethrough():
    sys = build_dpc_system()
    env, p = sys.env, sys.params

    def scenario():
        f = yield from sys.vfs.open("/kvfs/breakered", O_CREAT)
        yield from sys.vfs.write(f, 0, b"x" * 4096)  # buffered: dirty page
        for _ in range(p.breaker_failures):
            sys.breaker.record_failure()
        assert sys.breaker.state == "open"
        # Flusher rounds while open: pages are skipped and stay dirty.
        yield env.timeout(p.cache_flush_period * 3)
        skipped = sys.cache_ctrl.writeback_skipped
        dirty_while_open = sys.cache_ctrl.dirty_pages()
        # New buffered writes bypass the cache (write-through) while open.
        before = sys.kvfs_adapter.writethrough_ops
        yield from sys.vfs.write(f, 8192, b"y" * 4096)
        writethrough = sys.kvfs_adapter.writethrough_ops - before
        # Past the reset window the flusher's next attempt is the half-open
        # probe; the backend is healthy, so it closes the breaker and drains.
        yield env.timeout(p.breaker_reset + p.cache_flush_period * 4)
        return skipped, dirty_while_open, writethrough

    skipped, dirty_while_open, writethrough = sys.run_until(scenario())
    assert skipped > 0
    assert dirty_while_open > 0
    assert writethrough == 1
    assert sys.breaker.state == "closed"
    assert sys.breaker.resets == 1
    assert sys.cache_ctrl.flushed_pages > 0
    assert sys.cache_ctrl.dirty_pages() == 0


def test_writethrough_data_remains_readable():
    sys = build_dpc_system()

    def scenario():
        f = yield from sys.vfs.open("/kvfs/wt", O_CREAT)
        for _ in range(sys.params.breaker_failures):
            sys.breaker.record_failure()
        yield from sys.vfs.write(f, 0, b"direct-path" * 100)
        data = yield from sys.vfs.read(f, 0, 1100)
        return data

    data = sys.run_until(scenario())
    assert data == b"direct-path" * 100


def test_nvme_transient_errors_are_retried_to_success():
    p = default_params()
    sys = build_dpc_system(p, with_cache=False)
    sys.fault_plane.set_nvme_error_rate(0.15, int(Errno.EAGAIN))
    payload = bytes([7]) * 8192

    def scenario():
        f = yield from sys.vfs.open("/kvfs/flaky", O_CREAT | O_DIRECT)
        for i in range(20):
            yield from sys.vfs.write(f, i * 8192, payload)
        out = []
        for i in range(20):
            out.append((yield from sys.vfs.read(f, i * 8192, 8192)))
        return out

    out = sys.run_until(scenario())
    assert all(chunk == payload for chunk in out)
    assert sys.tgt.transient_errors > 0
    assert sys.ini.transient_retries > 0
    # Target-side injections and the fault trace agree.
    assert (
        sys.fault_plane.counts().get("nvme-transient", 0) == sys.tgt.transient_errors
    )
