"""RPC timeouts, backoff, and exactly-once retry semantics."""

import random

import pytest

from repro.fault import (
    ChannelFaults,
    FaultPlane,
    IdempotencyFilter,
    RetryPolicy,
    RpcTimeout,
    call_with_timeout,
    retry_policy_from,
)
from repro.dfs.mds import DFS_ROOT_INO
from repro.core.testbeds import build_host_dfs_clients
from repro.kv.client import KvClient
from repro.kv.server import KvCluster
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric


def build_kv(rpc_timeout=500e-6, **overrides):
    """A small KV rig: cluster + one client on a fault-capable fabric."""
    p = default_params().with_overrides(rpc_timeout=rpc_timeout, **overrides)
    env = Environment(seed=p.seed)
    plane = FaultPlane(env)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    fabric.fault_plane = plane
    cluster = KvCluster(env, fabric, p)
    fabric.attach("cli")
    client = KvClient(
        fabric, "cli", cluster.shard_names(), retry=retry_policy_from(p), plane=plane
    )
    return env, plane, cluster, client


# ------------------------------------------------------------------ unit level
def test_backoff_is_exponential_and_jitter_bounded():
    pol = RetryPolicy(
        timeout=1e-3, backoff_base=100e-6, backoff_mult=2.0, jitter=0.25
    )
    rng = random.Random(7)
    for attempt in range(1, 6):
        raw = 100e-6 * 2.0 ** (attempt - 1)
        d = pol.backoff(attempt, rng)
        assert raw * 0.75 <= d <= raw * 1.25


def test_backoff_deterministic_per_rng_seed():
    pol = RetryPolicy(timeout=1e-3, jitter=0.5)
    a = [pol.backoff(i, random.Random(3)) for i in range(1, 5)]
    b = [pol.backoff(i, random.Random(3)) for i in range(1, 5)]
    assert a == b


def test_zero_jitter_is_exact():
    pol = RetryPolicy(timeout=1e-3, backoff_base=50e-6, backoff_mult=3.0, jitter=0.0)
    assert pol.backoff(1, random.Random(0)) == pytest.approx(50e-6)
    assert pol.backoff(3, random.Random(0)) == pytest.approx(450e-6)


def test_retry_policy_from_gates_on_timeout():
    p = default_params()
    assert p.rpc_timeout == 0.0
    assert retry_policy_from(p) is None
    pol = retry_policy_from(p.with_overrides(rpc_timeout=300e-6))
    assert pol is not None
    assert pol.timeout == pytest.approx(300e-6)
    assert pol.max_attempts == p.rpc_retry_max


def test_call_with_timeout_races_the_deadline():
    env = Environment(seed=1)

    def slow():
        yield env.timeout(100e-6)
        return "done"

    def scenario():
        value = yield from call_with_timeout(env, slow(), 200e-6)
        assert value == "done"
        with pytest.raises(RpcTimeout):
            yield from call_with_timeout(env, slow(), 50e-6)

    env.run(until=env.process(scenario()))


def test_idempotency_filter_ttl_expires_old_tokens():
    clock = [0.0]
    f = IdempotencyFilter(capacity=64, ttl=1.0, now_fn=lambda: clock[0])
    f.put("a", "ra")
    clock[0] = 0.6
    f.put("b", "rb")
    assert f.check("a") == (True, "ra")
    clock[0] = 1.2  # "a" (stored at 0.0) is past the 1s ttl; "b" is not
    assert f.check("a") == (False, None)
    assert f.check("b") == (True, "rb")
    assert f.expirations == 1
    clock[0] = 5.0
    assert f.check("b") == (False, None)
    assert f.expirations == 2
    assert len(f) == 0


def test_idempotency_filter_ttl_ages_from_first_reservation():
    from repro.fault.idempotency import PENDING

    clock = [0.0]
    f = IdempotencyFilter(capacity=4, ttl=1.0, now_fn=lambda: clock[0])
    f.put("t", PENDING)
    clock[0] = 0.9
    f.put("t", "resp")  # PENDING -> final must not reset the age
    assert f.check("t") == (True, "resp")
    clock[0] = 1.05  # past the *reservation* time + ttl
    assert f.check("t") == (False, None)


def test_idempotency_filter_ttl_requires_clock():
    with pytest.raises(ValueError):
        IdempotencyFilter(ttl=1.0)


def test_idempotency_filter_ttl_zero_is_size_bounded_only():
    f = IdempotencyFilter(capacity=2, ttl=0.0)
    for i in range(5):
        f.put(f"t{i}", i)
    assert len(f) == 2
    assert f.expirations == 0
    assert f.check("t4") == (True, 4)


def test_idempotency_filter_memoises_and_caps():
    f = IdempotencyFilter(capacity=4)
    assert f.check("t1") == (False, None)
    f.put("t1", "resp")
    assert f.check("t1") == (True, "resp")
    assert f.hits == 1
    # None (unstamped) never memoised.
    assert f.check(None) == (False, None)
    f.put(None, "x")
    assert len(f) == 1
    # FIFO aging once past capacity.
    for i in range(2, 7):
        f.put(f"t{i}", i)
    assert len(f) == 4
    assert f.check("t1") == (False, None)


# ------------------------------------------------------------ end-to-end KV
def test_duplicated_mutations_apply_exactly_once():
    env, plane, cluster, client = build_kv()
    # Every client request is delivered twice; replies are untouched.
    plane.set_channel("cli", None, ChannelFaults(dup=1.0))

    def scenario():
        ok = yield from client.cas(b"dupkey--", None, b"v1")
        assert ok is True
        yield from client.put(b"dupkey--", b"v2")
        value = yield from client.get(b"dupkey--")
        assert value == b"v2"
        # create-if-absent still refuses a second creator: the duplicate of
        # the first cas was deduped, not applied as a competing create.
        ok2 = yield from client.cas(b"dupkey--", None, b"v3")
        assert ok2 is False

    env.run(until=env.process(scenario()))
    assert sum(s._idem.hits for s in cluster.shards) >= 2
    assert plane.counts().get("net-dup", 0) >= 3


def test_retries_recover_from_message_loss():
    env, plane, cluster, client = build_kv()
    plane.set_channel(None, None, ChannelFaults(drop=0.1))
    keys = [f"k{i:04d}".encode() for i in range(10)]

    def scenario():
        for i, k in enumerate(keys):
            yield from client.put(k, bytes([i]) * 64)
        got = []
        for k in keys:
            got.append((yield from client.get(k)))
        return got

    got = env.run(until=env.process(scenario()))
    assert got == [bytes([i]) * 64 for i in range(10)]
    assert client.retries > 0
    assert client.timeouts_exhausted == 0
    assert plane.counts().get("net-drop", 0) > 0
    # A retried put whose first attempt executed (reply lost) was deduped.
    assert plane.counts().get("retry", 0) == client.retries


def test_mds_creates_survive_lossy_fabric_exactly_once():
    p = default_params().with_overrides(rpc_timeout=500e-6, rpc_retry_max=8)
    tb = build_host_dfs_clients(p)
    env, plane, client = tb.env, tb.fault_plane, tb.std_client
    # Loss only on client-facing channels: MDS-internal forwards stay clean.
    faults = ChannelFaults(drop=0.15)
    plane.set_channel(client.src, None, faults)
    plane.set_channel(None, client.src, faults)
    names = [f"file{i:02d}".encode() for i in range(12)]

    def scenario():
        attrs = []
        for name in names:
            attrs.append((yield from client.create(DFS_ROOT_INO, name)))
        entries = yield from client.readdir(DFS_ROOT_INO)
        return attrs, entries

    attrs, entries = tb.run_until(scenario())
    # Every create returned a real attr, all inos distinct, and the retried
    # creates did not manifest as duplicate dentries or EEXIST errors.
    inos = [a.ino for a in attrs]
    assert len(set(inos)) == len(names)
    assert sorted(n for n, _ in entries) == sorted(names)
    assert client.retries > 0
