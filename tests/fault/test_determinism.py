"""Seeded-determinism contract: one root seed reproduces the whole run."""

from repro.core.testbeds import build_host_dfs_clients
from repro.dfs.mds import DFS_ROOT_INO
from repro.fault import ChannelFaults, FaultPlane, retry_policy_from
from repro.kv.client import KvClient
from repro.kv.server import KvCluster
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric
from repro.workload.runner import ClientTarget, JobSpec, run_job


def test_substreams_are_independent_and_named():
    e1 = Environment(seed=5)
    ra = e1.substream("a")
    seq_a = [ra.random() for _ in range(6)]
    # Drawing from an unrelated stream first must not perturb "a".
    e2 = Environment(seed=5)
    rb = e2.substream("b")
    _ = [rb.random() for _ in range(10)]
    ra2 = e2.substream("a")
    assert [ra2.random() for _ in range(6)] == seq_a
    # A different root seed gives a different stream.
    e3 = Environment(seed=6)
    assert e3.substream("a").random() != seq_a[0]


def _job(seed: int):
    p = default_params().with_overrides(seed=seed)
    tb = build_host_dfs_clients(p)
    stripe = tb.layout.stripe_size
    nstripes = 12

    def prep():
        attr = yield from tb.opt_client.create(DFS_ROOT_INO, b"jobfile")
        for s in range(nstripes):
            yield from tb.opt_client.write(attr.ino, s * stripe, b"\x5a" * stripe)
        yield from tb.opt_client.flush_metadata()
        return attr.ino

    ino = tb.run_until(prep())
    spec = JobSpec(
        name="det",
        mode="randrw",
        block_size=8192,
        nthreads=4,
        ops_per_thread=12,
        file_size=nstripes * stripe,
        seed=None,  # derive per-thread streams from the env root seed
    )
    res = run_job(tb.env, spec, lambda tid: ClientTarget(tb.opt_client, ino))
    return res


def test_run_job_bit_reproducible_from_root_seed():
    r1 = _job(42)
    r2 = _job(42)
    assert r1.elapsed == r2.elapsed
    assert r1.iops == r2.iops
    assert r1.lat._samples == r2.lat._samples
    assert r1.errors == r2.errors == 0


def test_run_job_offsets_depend_on_root_seed():
    # seed=None threads draw offsets from env.substream("job:<name>:t<tid>"),
    # so changing the root seed changes the offset streams.
    e1 = Environment(seed=42)
    e2 = Environment(seed=43)
    s1 = [e1.substream("job:det:t0").randrange(1 << 30) for _ in range(4)]
    s2 = [e2.substream("job:det:t0").randrange(1 << 30) for _ in range(4)]
    assert s1 != s2


def test_probabilistic_fault_schedule_replays_identically():
    def run_once():
        p = default_params().with_overrides(rpc_timeout=500e-6)
        env = Environment(seed=p.seed)
        plane = FaultPlane(env)
        fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
        fabric.fault_plane = plane
        cluster = KvCluster(env, fabric, p)
        fabric.attach("cli")
        client = KvClient(
            fabric,
            "cli",
            cluster.shard_names(),
            retry=retry_policy_from(p),
            plane=plane,
        )
        plane.set_channel(None, None, ChannelFaults(drop=0.08, dup=0.05))

        def scenario():
            for i in range(24):
                yield from client.put(f"pk{i:03d}".encode(), bytes([i]) * 48)
            for i in range(24):
                value = yield from client.get(f"pk{i:03d}".encode())
                assert value == bytes([i]) * 48

        env.run(until=env.process(scenario()))
        return plane.trace_signature(), env.now, client.retries

    first = run_once()
    second = run_once()
    assert first == second
    trace, _, _ = first
    # The schedule actually exercised the probabilistic paths.
    kinds = {kind for _, kind, _, _ in trace}
    assert "net-drop" in kinds or "net-dup" in kinds
