"""Hedged/tied requests and the unified request engine.

Covers the three ISSUE-level behaviours: a fixed-seed hedged run replays
bit-identically, a hedge whose loser also reaches an idempotent server
applies exactly once, and a tied-request wire cancel frees the loser's
queue slot at the server instead of burning service time on it.
"""

import pytest

from repro.fault import ChannelFaults, FaultPlane, RetryPolicy, retry_policy_from
from repro.fault.requests import RequestConfig, RequestEngine
from repro.kv.client import KvClient
from repro.kv.server import KvCluster
from repro.obsv.quantiles import SketchHub
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric
from repro.sim.resources import Resource

US = 1e-6

HEDGED = RequestConfig(hedging=True)


class EchoServer:
    """Minimal fabric server with a thread pool and the tied-request
    abandon checks the real servers implement (drop unanswered on a
    cancelled rid, both before queuing and after the thread grant)."""

    def __init__(self, env, fabric, name, service, threads=1):
        self.env = env
        self.fabric = fabric
        self.name = name
        self.service = service
        self.endpoint = fabric.attach(name)
        self.threads = Resource(env, threads)
        self.served = 0
        self.cancel_drops = 0
        env.process(self._serve(), name=name)

    def _serve(self):
        while True:
            msg = yield self.endpoint.inbox.get()
            self.env.process(self._handle(msg), name=f"{self.name}-req")

    def _handle(self, msg):
        if msg.rid is not None and self.endpoint.take_abandoned(msg.rid):
            self.cancel_drops += 1
            return
        req = self.threads.request()
        yield req
        try:
            if msg.rid is not None and self.endpoint.take_abandoned(msg.rid):
                self.cancel_drops += 1
                return
            yield self.env.timeout(self.service)
            self.served += 1
        finally:
            self.threads.release(req)
        yield from self.fabric.reply(msg, ("from", self.name), 64)


def warm_hub(env, endpoint, n=16, latency=20 * US):
    """A sketch hub with enough observations that the engine trusts the
    endpoint's quantiles (hedge delay clamps to the 30us floor)."""
    hub = SketchHub(now_fn=lambda: env.now)
    for _ in range(n):
        hub.observe(f"req.{endpoint}", latency)
    return hub


def test_config_defaults_are_off():
    assert RequestConfig().enabled is False
    assert RequestConfig.from_params(default_params()).enabled is False
    assert RequestConfig(hedging=True).enabled is True
    assert RequestConfig(adaptive_retry=True).enabled is True


def test_hedge_wins_and_cancel_frees_queue_slot():
    env = Environment(seed=3)
    fabric = Fabric(env, latency=1 * US)
    slow = EchoServer(env, fabric, "slow", service=500 * US, threads=1)
    fast = EchoServer(env, fabric, "fast", service=10 * US)
    fabric.attach("cli")
    fabric.attach("other")
    hub = warm_hub(env, "slow")
    eng = RequestEngine(
        env,
        fabric,
        "cli",
        RetryPolicy(timeout=5e-3, max_attempts=2),
        hub_fn=lambda: hub,
        config=HEDGED,
    )
    probe_done = []

    def filler():
        # Occupies the slow server's single thread for 500us.
        yield from fabric.rpc("other", "slow", ("filler",), 64)

    def probe():
        # Queued behind the engine's primary; measures when the slot frees.
        yield env.timeout(5 * US)
        yield from fabric.rpc("other", "slow", ("probe",), 64)
        probe_done.append(env.now)

    def scenario():
        yield env.timeout(1 * US)  # let the filler arrive first
        resp = yield from eng.call(
            "slow", ("payload",), 64, hedge_to=lambda: "fast"
        )
        return resp

    env.process(filler(), name="filler")
    env.process(probe(), name="probe")
    resp = env.run(until=env.process(scenario()))
    env.run()  # drain the cancel and the queued requests

    assert resp == ("from", "fast")
    st = eng.stat("slow")
    assert st.hedges == 1
    assert st.hedge_wins == 1
    assert st.cancels == 1
    # The loser was dropped at the thread grant: never serviced, and the
    # probe queued behind it ran right after the filler (~1000us incl. its
    # own 500us service) instead of waiting out the loser's 500us too
    # (~1500us).
    assert slow.cancel_drops == 1
    assert slow.served == 2  # filler + probe, not the cancelled primary
    assert probe_done and probe_done[0] < 1200 * US


def test_hedge_and_loser_apply_exactly_once():
    p = default_params().with_overrides(rpc_timeout=500e-6)
    env = Environment(seed=p.seed)
    plane = FaultPlane(env)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    fabric.fault_plane = plane
    cluster = KvCluster(env, fabric, p)
    fabric.attach("cli")
    client = KvClient(
        fabric,
        "cli",
        cluster.shard_names(),
        retry=retry_policy_from(p),
        plane=plane,
        config=HEDGED,
    )
    key = b"hedgekey"
    shard = client.route(key)  # warm + delay the shard the key hashes to
    client.sketches = warm_hub(env, shard)
    # Every request cli->shard is delayed 100us: the primary outlives the
    # 30us hedge delay, and the wire cancel (also delayed) lands only
    # after the hedged duplicate reached the server — both execute.
    plane.set_channel("cli", shard, ChannelFaults(delay=1.0, delay_time=100e-6))

    def scenario():
        ok = yield from client.cas(key, None, b"v1")
        assert ok is True
        yield env.timeout(1e-3)  # let the losing duplicate land and dedupe
        ok2 = yield from client.cas(key, None, b"v2")
        value = yield from client.get(key)
        return ok2, value

    ok2, value = env.run(until=env.process(scenario()))
    env.run()
    # The duplicate was memoised by its idempotency token, not re-applied:
    # the create-if-absent happened exactly once.
    assert ok2 is False
    assert value == b"v1"
    st = client._req.stat(shard)
    assert st.hedges >= 1
    assert sum(s._idem.hits for s in cluster.shards) >= 1


def _hedged_kv_fingerprint(seed: int) -> tuple:
    """One lossy hedged KV run reduced to its observable schedule."""
    p = default_params().with_overrides(seed=seed, rpc_timeout=500e-6)
    env = Environment(seed=p.seed)
    plane = FaultPlane(env)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    fabric.fault_plane = plane
    cluster = KvCluster(env, fabric, p)
    shard = cluster.shard_names()[0]
    fabric.attach("cli")
    client = KvClient(
        fabric,
        "cli",
        cluster.shard_names(),
        retry=retry_policy_from(p),
        plane=plane,
        config=RequestConfig(hedging=True, adaptive_retry=True),
    )
    client.sketches = warm_hub(env, shard)
    plane.set_channel("cli", None, ChannelFaults(drop=0.1, delay=0.5,
                                                 delay_time=80e-6))

    def scenario():
        for i in range(20):
            yield from client.put(f"k{i:03d}".encode(), bytes([i]) * 128)
        got = []
        for i in range(20):
            got.append((yield from client.get(f"k{i:03d}".encode())))
        return got

    got = env.run(until=env.process(scenario()))
    env.run()
    stats = {
        ep: tuple(sorted(st.as_dict().items()))
        for ep, st in client._req.stats.items()
    }
    return (
        env.now,
        got,
        client.retries,
        tuple(sorted(stats.items())),
        tuple(s.ops_served for s in cluster.shards),
        tuple(sorted(plane.counts().items())),
    )


def test_hedged_run_replays_bit_identically():
    a = _hedged_kv_fingerprint(seed=11)
    b = _hedged_kv_fingerprint(seed=11)
    assert a == b
    # All data survived the lossy fabric on both replicas.
    assert a[1] == [bytes([i]) * 128 for i in range(20)]


def test_hedging_off_needs_no_sketches():
    # Defaults-off engines never touch the hub: a plain run with no
    # sketches configured routes through the legacy loop untouched.
    p = default_params().with_overrides(rpc_timeout=500e-6)
    env = Environment(seed=p.seed)
    plane = FaultPlane(env)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    fabric.fault_plane = plane
    cluster = KvCluster(env, fabric, p)
    fabric.attach("cli")
    client = KvClient(
        fabric, "cli", cluster.shard_names(), retry=retry_policy_from(p), plane=plane
    )

    def scenario():
        yield from client.put(b"plainkey", b"v")
        return (yield from client.get(b"plainkey"))

    assert env.run(until=env.process(scenario())) == b"v"
    st = client._req.stats
    assert all(s.hedges == 0 and s.cancels == 0 for s in st.values())


def test_cancel_message_pays_wire_costs():
    env = Environment(seed=5)
    fabric = Fabric(env, latency=1 * US)
    srv = EchoServer(env, fabric, "srv", service=5 * US)
    cli = fabric.attach("cli")
    sent_before = cli.messages_out
    recv_before = srv.endpoint.messages_in
    t0 = env.now

    def scenario():
        yield from fabric.cancel("cli", "srv", ("cli", 1))

    env.run(until=env.process(scenario()))
    assert cli.messages_out == sent_before + 1
    assert srv.endpoint.messages_in == recv_before + 1
    assert env.now > t0  # paid serialization + propagation, not free
    # The abandoned rid is registered at the destination endpoint.
    assert srv.endpoint.take_abandoned(("cli", 1)) is True
    assert srv.endpoint.take_abandoned(("cli", 1)) is False


def test_pending_cancel_for_unknown_endpoint_is_noop():
    env = Environment(seed=5)
    fabric = Fabric(env, latency=1 * US)
    fabric.attach("cli")

    def scenario():
        yield from fabric.cancel("cli", "ghost", ("cli", 9))

    env.run(until=env.process(scenario()))  # must not raise
