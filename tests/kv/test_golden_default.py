"""Golden pin: the default-params KV path is bit-identical across PRs.

The flash/elastic work (flash model, hash-ring routing, rebalancer) must be
invisible when switched off: ``kv_flash_model=False`` and no rebalancer leave
every service time, queue wait, and reply byte exactly where the static
modulo-routed zero-cost-engine path put them.  This probe drives the KV
mainline — small/large puts and gets, deletes, cas, small-value scans
(single-shard and fan-out), single-shard batches, and *uncontended*
cross-shard 2PC — from two concurrent clients and pins a sha256 over the
full timing + stats + results trace.

The probe deliberately avoids the two paths the satellite bug-fixes change
on purpose: large-value scans (now charged against backend read bandwidth)
and lock-contended 2PC (busy-poll replaced by event parking).

The signature was captured on the pre-change tree (PR 7 head) and must not
move.
"""

from __future__ import annotations

import hashlib
import json

from repro.kv.client import KvClient
from repro.kv.server import KvCluster
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric

GOLDEN_KV_DEFAULT = "3757e0d850e78eb43184d12e6b82125db77b8fbdf76dd4acc26582b1b4ddff0e"

BIG = 64 * 1024  # over kv_meta_value_limit: takes the media-bandwidth path


def _client_a(env: Environment, cli: KvClient, out: list):
    for i in range(24):
        key = b"A%04d" % i
        value = (b"a" * BIG) if i % 6 == 0 else (b"small-%d" % i)
        yield from cli.put(key, value)
    for i in range(24):
        v = yield from cli.get(b"A%04d" % i)
        out.append((b"A%04d" % i, None if v is None else len(v)))
    for i in range(0, 24, 5):
        yield from cli.delete(b"A%04d" % i)
    ok = yield from cli.cas(b"A0001", b"small-1", b"swapped")
    out.append(("cas1", ok))
    ok = yield from cli.cas(b"A0002", b"wrong", b"nope")
    out.append(("cas2", ok))
    # Single-shard batch.
    yield from cli.batch_commit([("put", b"A0001x", b"y")])
    # Uncontended cross-shard 2PC over disjoint keys.
    yield from cli.batch_commit(
        [("put", b"TXa-%02d" % i, b"v%d" % i) for i in range(6)]
    )
    # Scans stick to small values: large scanned values now charge backend
    # read bandwidth (an intentional fix this golden must not pin).
    items = yield from cli.scan_prefix(b"TXa", limit=10)
    out.append(("scanA", [(k, len(v)) for k, v in items]))


def _client_b(env: Environment, cli: KvClient, out: list):
    for i in range(24):
        key = b"B%04d" % i
        value = (b"b" * BIG) if i % 7 == 0 else (b"beta-%d" % i)
        yield from cli.put(key, value)
    for i in range(24):
        v = yield from cli.get(b"B%04d" % i)
        out.append((b"B%04d" % i, None if v is None else len(v)))
    yield from cli.batch_commit(
        [("put", b"TXb-%02d" % i, b"w%d" % i) for i in range(6)]
        + [("delete", b"B0003")]
    )
    # Fan-out scan over a short (unroutable) prefix of small values only.
    items = yield from cli.scan_prefix(b"TX", limit=50)
    out.append(("scanTX", [(k, len(v)) for k, v in items]))


def probe_snapshot() -> dict:
    """Run the probe workload and return a deterministic trace dict."""
    params = default_params().with_overrides(kv_shards=4)
    env = Environment(seed=params.seed)
    fabric = Fabric(env, latency=params.net_latency, default_bandwidth=params.net_bandwidth)
    cluster = KvCluster(env, fabric, params)
    outs: dict[str, list] = {"a": [], "b": []}
    clients = []
    for cname, fn in (("ca", _client_a), ("cb", _client_b)):
        ep = fabric.attach(cname)
        cli = KvClient(fabric, cname, cluster.shard_names())
        clients.append(cli)
        env.process(fn(env, cli, outs[cname[-1]]), name=cname)
    env.run()
    snap = {
        "now": env.now,
        "results": outs,
        "client_ops": [c.ops_issued for c in clients],
        "shards": [
            {
                "name": s.name,
                "ops_served": s.ops_served,
                "queue_wait_total": s.queue_wait_total,
                "engine": {
                    "puts": s.engine.stats.puts,
                    "gets": s.engine.stats.gets,
                    "deletes": s.engine.stats.deletes,
                    "scans": s.engine.stats.scans,
                    "flushes": s.engine.stats.flushes,
                    "bytes": s.engine.approximate_bytes(),
                    "live": s.engine.count_live(),
                },
            }
            for s in cluster.shards
        ],
    }
    return snap


def _signature(obj) -> str:
    blob = json.dumps(obj, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def test_default_kv_path_bit_identical():
    sig = _signature(probe_snapshot())
    assert sig == GOLDEN_KV_DEFAULT, (
        "default-params KV path drifted from the pre-flash/elastic golden; "
        f"got {sig}"
    )
