"""Integration tests: KV client <-> shard servers over the fabric."""

import pytest

from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric
from repro.kv.client import KvClient, KvTransactionError
from repro.kv.server import KvCluster, KvShardServer


def make_cluster(shards=4):
    env = Environment()
    params = default_params().with_overrides(kv_shards=shards)
    fabric = Fabric(env, latency=params.net_latency, default_bandwidth=params.net_bandwidth)
    cluster = KvCluster(env, fabric, params)
    fabric.attach("client")
    client = KvClient(fabric, "client", cluster.shard_names())
    return env, fabric, cluster, client


def run(env, gen):
    """Drive a client generator to completion and return its value."""
    p = env.process(gen)
    return env.run(until=p)


def test_put_get_roundtrip_over_network():
    env, _, _, client = make_cluster()

    def flow():
        yield from client.put(b"hello-key", b"world")
        v = yield from client.get(b"hello-key")
        return v

    assert run(env, flow()) == b"world"
    assert env.now > 0  # network + service time elapsed


def test_get_missing_returns_none():
    env, _, _, client = make_cluster()

    def flow():
        return (yield from client.get(b"nothing-here"))

    assert run(env, flow()) is None


def test_delete_over_network():
    env, _, _, client = make_cluster()

    def flow():
        yield from client.put(b"k1", b"v1")
        yield from client.delete(b"k1")
        return (yield from client.get(b"k1"))

    assert run(env, flow()) is None


def test_routing_is_deterministic_and_spreads():
    _, _, _, client = make_cluster(shards=8)
    keys = [f"{i:08d}-key".encode() for i in range(200)]
    shards = {client.route(k) for k in keys}
    assert len(shards) >= 4  # keys spread over many shards
    assert all(client.route(k) == client.route(k) for k in keys)


def test_same_routing_prefix_colocates():
    _, _, _, client = make_cluster(shards=8)
    base = b"ABCDEFGH"  # 8-byte routing prefix
    shards = {client.route(base + f"/child{i}".encode()) for i in range(50)}
    assert len(shards) == 1


def test_prefix_scan_single_shard():
    env, _, _, client = make_cluster()
    prefix = b"DIRINODE"  # 8 bytes

    def flow():
        yield from client.put(prefix + b"/b", b"2")
        yield from client.put(prefix + b"/a", b"1")
        yield from client.put(b"OTHERDIR/x", b"9")
        return (yield from client.scan_prefix(prefix))

    items = run(env, flow())
    assert items == [(prefix + b"/a", b"1"), (prefix + b"/b", b"2")]


def test_short_prefix_scan_fans_out():
    env, _, _, client = make_cluster()

    def flow():
        for i in range(10):
            yield from client.put(f"zz-key-{i}".encode(), b"v")
        return (yield from client.scan_prefix(b"zz"))

    items = run(env, flow())
    assert len(items) == 10
    assert [k for k, _ in items] == sorted(k for k, _ in items)


def test_cas_create_if_absent():
    env, _, _, client = make_cluster()

    def flow():
        ok1 = yield from client.cas(b"unique", None, b"first")
        ok2 = yield from client.cas(b"unique", None, b"second")
        v = yield from client.get(b"unique")
        return ok1, ok2, v

    ok1, ok2, v = run(env, flow())
    assert ok1 is True and ok2 is False and v == b"first"


def test_cas_delete_on_match():
    env, _, _, client = make_cluster()

    def flow():
        yield from client.put(b"k", b"v")
        ok = yield from client.cas(b"k", b"v", None)
        v = yield from client.get(b"k")
        return ok, v

    ok, v = run(env, flow())
    assert ok is True and v is None


def test_single_shard_batch_is_atomic():
    env, _, _, client = make_cluster()
    base = b"SAMEPREF"

    def flow():
        yield from client.batch_commit(
            [("put", base + b"/a", b"1"), ("put", base + b"/b", b"2")]
        )
        a = yield from client.get(base + b"/a")
        b = yield from client.get(base + b"/b")
        return a, b

    assert run(env, flow()) == (b"1", b"2")


def test_cross_shard_batch_2pc():
    env, _, _, client = make_cluster(shards=8)
    # Find two keys on different shards.
    k1 = b"AAAAAAAA/x"
    k2 = None
    for i in range(100):
        cand = f"B{i:07d}".encode() + b"/y"
        if client.route(cand) != client.route(k1):
            k2 = cand
            break
    assert k2 is not None

    def flow():
        yield from client.put(k1, b"old")
        yield from client.batch_commit([("delete", k1), ("put", k2, b"moved")])
        v1 = yield from client.get(k1)
        v2 = yield from client.get(k2)
        return v1, v2

    assert run(env, flow()) == (None, b"moved")


def test_batch_rejects_non_write_ops():
    env, _, _, client = make_cluster()

    def flow():
        yield from client.batch_commit([("get", b"k")])

    with pytest.raises(ValueError):
        run(env, flow())


def test_concurrent_clients_all_succeed():
    env, fabric, cluster, _ = make_cluster()
    clients = []
    for i in range(4):
        fabric.attach(f"c{i}")
        clients.append(KvClient(fabric, f"c{i}", cluster.shard_names()))
    done = []

    def worker(i, cl):
        for j in range(10):
            yield from cl.put(f"w{i}-k{j}".encode(), f"v{i}-{j}".encode())
        for j in range(10):
            v = yield from cl.get(f"w{i}-k{j}".encode())
            assert v == f"v{i}-{j}".encode()
        done.append(i)

    for i, cl in enumerate(clients):
        env.process(worker(i, cl))
    env.run()
    assert sorted(done) == [0, 1, 2, 3]


def test_server_thread_pool_limits_concurrency():
    env = Environment()
    params = default_params()
    fabric = Fabric(env, latency=1e-6)
    server = KvShardServer(env, fabric, "solo", params, threads=1)
    fabric.attach("client")
    client = KvClient(fabric, "client", ["solo"])
    finish_times = []

    def worker(i):
        yield from client.put(f"k{i}".encode(), b"v")
        finish_times.append(env.now)

    for i in range(4):
        env.process(worker(i))
    env.run()
    # With a single server thread, completions are spaced by >= service time
    # (small values take the metadata service tier).
    gaps = [b - a for a, b in zip(finish_times, finish_times[1:])]
    assert all(g >= params.kv_meta_put_service * 0.9 for g in gaps)


def test_cluster_ops_counter():
    env, _, cluster, client = make_cluster()

    def flow():
        for i in range(5):
            yield from client.put(f"key-{i}".encode(), b"v")

    run(env, flow())
    assert cluster.total_ops() == 5
