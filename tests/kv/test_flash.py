"""Flash device model: CMT, GC, small-value inlining, adaptive threshold."""

import pytest

from repro.kv.client import KvClient
from repro.kv.flash import FlashKvModel
from repro.kv.server import KvCluster
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric


def run(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def make_model(**overrides):
    params = default_params().with_overrides(kv_flash_model=True, **overrides)
    env = Environment(seed=params.seed)
    return env, FlashKvModel(env, params)


# -- CMT --------------------------------------------------------------------


def test_cmt_miss_then_hit():
    env, m = make_model()

    def flow():
        yield from m.charge_get(b"k1", b"v" * 100)
        t_miss = env.now
        yield from m.charge_get(b"k1", b"v" * 100)
        return t_miss, env.now - t_miss

    t_miss, t_hit = run(env, flow())
    assert m.stats.cmt_misses == 1 and m.stats.cmt_hits == 1
    # The miss paid a translation-page flash read; the hit paid DRAM.
    assert t_hit < t_miss


def test_cmt_lru_eviction():
    env, m = make_model(kv_cmt_entries=2)

    def flow():
        yield from m.charge_get(b"a", None)
        yield from m.charge_get(b"b", None)
        yield from m.charge_get(b"a", None)  # refresh a: b becomes LRU
        yield from m.charge_get(b"c", None)  # evicts b
        yield from m.charge_get(b"a", None)  # still cached
        yield from m.charge_get(b"b", None)  # miss again

    run(env, flow())
    assert m.stats.cmt_misses == 4  # a, b, c, b
    assert m.stats.cmt_hits == 2  # a, a


# -- write path + GC --------------------------------------------------------


def test_small_puts_coalesce_into_shared_programs():
    env, m = make_model(kv_flash_block_pages=1 << 20)  # keep GC out of the count
    page = m.params.kv_flash_page

    def flow():
        # MAP_ENTRY_BYTES each: many mapping updates share one page program.
        for i in range(page // FlashKvModel.MAP_ENTRY_BYTES):
            yield from m.charge_put(b"k%03d" % i, b"x" * (2 * page))

    run(env, flow())
    # Each put programs 2 data pages; the 128 mapping entries add exactly
    # one more page in total.
    n = m.params.kv_flash_page // FlashKvModel.MAP_ENTRY_BYTES
    assert m.stats.page_writes == 2 * n + 1


def test_gc_fires_per_erase_block():
    env, m = make_model(kv_flash_block_pages=4, kv_flash_gc_live=0.5)

    def flow():
        before = env.now
        yield from m.charge_put(b"big", b"z" * (4 * m.params.kv_flash_page))
        return env.now - before

    elapsed = run(env, flow())
    assert m.stats.erases == 1
    assert m.stats.gc_page_moves == 2  # 50% of a 4-page block relocated
    p = m.params
    expected = (
        4 * p.kv_flash_write_us
        + p.kv_flash_erase_us
        + 2 * (p.kv_flash_read_us + p.kv_flash_write_us)
    )
    assert elapsed == pytest.approx(expected)


# -- inlining ----------------------------------------------------------------


def test_inlined_get_skips_data_pages():
    env, m = make_model(kv_inline_enabled=True, kv_inline_max=512)

    def flow():
        yield from m.charge_put(b"small", b"s" * 256)  # inlined
        yield from m.charge_put(b"large", b"L" * 8192)  # page-resident
        r0 = m.stats.page_reads
        yield from m.charge_get(b"small", b"s" * 256)
        small_reads = m.stats.page_reads - r0
        r0 = m.stats.page_reads
        yield from m.charge_get(b"large", b"L" * 8192)
        large_reads = m.stats.page_reads - r0
        return small_reads, large_reads

    small_reads, large_reads = run(env, flow())
    assert m.stats.inline_puts == 1
    assert m.stats.inline_gets == 1
    assert small_reads == 0  # CMT hit: value travels with the mapping entry
    assert large_reads == 8192 // m.params.kv_flash_page


def test_inline_disabled_always_reads_data_pages():
    env, m = make_model(kv_inline_enabled=False)

    def flow():
        yield from m.charge_put(b"small", b"s" * 256)
        r0 = m.stats.page_reads
        yield from m.charge_get(b"small", b"s" * 256)
        return m.stats.page_reads - r0

    assert run(env, flow()) == 1
    assert m.stats.inline_puts == 0


def test_adaptive_threshold_follows_read_traffic():
    env, m = make_model(
        kv_inline_enabled=True, kv_inline_max=1024, kv_inline_adapt_window=64
    )
    m.inline_threshold = 0  # start pessimistic; adaptation must raise it

    def flow():
        # Read-heavy small values: inlining clearly pays.
        for i in range(16):
            yield from m.charge_put(b"k%02d" % i, b"v" * 200)
        for _ in range(8):
            for i in range(16):
                yield from m.charge_get(b"k%02d" % i, b"v" * 200)

    run(env, flow())
    assert m.stats.adaptations >= 1
    assert m.inline_threshold >= 256  # covers the 200-byte population


# -- end to end through the shard server -------------------------------------


def _latency_probe(flash_overrides):
    params = default_params().with_overrides(
        kv_shards=2, kv_flash_model=True, **flash_overrides
    )
    env = Environment(seed=params.seed)
    fabric = Fabric(
        env, latency=params.net_latency, default_bandwidth=params.net_bandwidth
    )
    cluster = KvCluster(env, fabric, params)
    fabric.attach("client")
    client = KvClient(fabric, "client", cluster.shard_names())

    def flow():
        for i in range(32):
            yield from client.put(b"attr%04d" % i, b"a" * 256)
        # Warm pass fills the CMT, timed pass measures steady-state gets.
        for i in range(32):
            yield from client.get(b"attr%04d" % i)
        t0 = env.now
        for i in range(32):
            yield from client.get(b"attr%04d" % i)
        return (env.now - t0) / 32

    p = env.process(flow())
    lat = env.run(until=p)
    return lat, cluster


def test_inlining_cuts_small_value_get_latency():
    lat_off, _ = _latency_probe({"kv_inline_enabled": False})
    lat_on, cluster_on = _latency_probe(
        {"kv_inline_enabled": True, "kv_inline_max": 512}
    )
    assert lat_on < lat_off
    # The saving is the data-page read each get skipped.
    saved = lat_off - lat_on
    assert saved == pytest.approx(default_params().kv_flash_read_us, rel=0.2)
    assert sum(s.flash.stats.inline_gets for s in cluster_on.shards) > 0


def test_flash_metrics_exported():
    env, m = make_model()

    def flow():
        yield from m.charge_put(b"k", b"v" * 100)
        yield from m.charge_get(b"k", b"v" * 100)

    run(env, flow())
    out = m.metrics("kv.flash")
    assert out["kv.flash.cmt_hits"] == 1
    assert out["kv.flash.page_reads"] == 1  # the (non-inlined) data page
    assert "kv.flash.inline_threshold" in out
