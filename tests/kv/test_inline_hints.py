"""Put-side inline hints: KVFS-declared small objects inline on flash.

A hint is an explicit declaration by the writer (attrs, dentries, small
file bodies) that the value is a point-lookup object worth keeping in the
CMT.  Hinted values inline whenever they fit one flash page, even above
the size-derived threshold; unhinted values still obey the threshold.
"""

from repro.kv.client import KvClient
from repro.kv.flash import FlashKvModel
from repro.kv.server import KvCluster
from repro.kvfs import schema
from repro.kvfs.fs import Kvfs
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.network import Fabric


def run(env, gen):
    p = env.process(gen)
    return env.run(until=p)


# -- flash model ------------------------------------------------------------


def make_model(**overrides):
    params = default_params().with_overrides(kv_flash_model=True, **overrides)
    env = Environment(seed=params.seed)
    return env, FlashKvModel(env, params)


def test_hint_inlines_above_size_threshold():
    env, m = make_model(kv_inline_enabled=True, kv_inline_max=512)
    big = b"v" * 3072  # over the 512B threshold, fits one 4KiB flash page

    def flow():
        yield from m.charge_put(b"hinted", big, hint=True)
        yield from m.charge_put(b"plain", big)

    run(env, flow())
    assert m.is_inlined(b"hinted") is True
    assert m.is_inlined(b"plain") is False
    assert m.stats.hinted_inline_puts == 1
    assert m.stats.inline_puts == 1


def test_hint_works_with_size_inlining_disabled():
    # kv_inline_enabled=False means threshold 0: nothing inlines on size,
    # but an explicit hint still does.
    env, m = make_model(kv_inline_enabled=False)

    def flow():
        yield from m.charge_put(b"hinted", b"v" * 256, hint=True)
        yield from m.charge_put(b"plain", b"v" * 256)

    run(env, flow())
    assert m.is_inlined(b"hinted") is True
    assert m.is_inlined(b"plain") is False
    assert m.stats.hinted_inline_puts == 1


def test_hint_never_inlines_past_one_flash_page():
    env, m = make_model(kv_inline_enabled=True, kv_inline_max=512)
    huge = b"v" * (default_params().kv_flash_page + 1)

    def flow():
        yield from m.charge_put(b"huge", huge, hint=True)

    run(env, flow())
    assert m.is_inlined(b"huge") is False
    assert m.stats.hinted_inline_puts == 0


def test_hinted_get_is_served_inline():
    env, m = make_model(kv_inline_enabled=False)
    val = b"v" * 1024

    def flow():
        yield from m.charge_put(b"k", val, hint=True)
        yield from m.charge_get(b"k", val)

    run(env, flow())
    assert m.stats.inline_gets == 1  # no data-page flash read


# -- end-to-end over the wire ----------------------------------------------


def build_kv(inline_hints):
    p = default_params().with_overrides(kv_flash_model=True)
    env = Environment(seed=p.seed)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    cluster = KvCluster(env, fabric, p)
    fabric.attach("cli")
    client = KvClient(
        fabric, "cli", cluster.shard_names(), inline_hints=inline_hints
    )
    return env, cluster, client


def hinted_puts(cluster):
    return sum(s.flash.stats.hinted_inline_puts for s in cluster.shards)


def test_put_hint_reaches_shard_flash():
    env, cluster, client = build_kv(inline_hints=True)
    val = b"v" * 1024

    def flow():
        yield from client.put(b"attrkey", val, inline_hint=True)
        yield from client.put(b"blockkey", val)  # unhinted rides "put"
        return (yield from client.get(b"attrkey"))

    assert run(env, flow()) == val
    assert hinted_puts(cluster) == 1


def test_cas_hint_reaches_shard_flash():
    env, cluster, client = build_kv(inline_hints=True)

    def flow():
        ok = yield from client.cas(b"dentry", None, b"d" * 700, inline_hint=True)
        return ok, (yield from client.get(b"dentry"))

    ok, value = run(env, flow())
    assert ok is True and value == b"d" * 700
    assert hinted_puts(cluster) == 1


def test_hints_off_by_default_keeps_wire_kind():
    # With the client-side gate off, inline_hint=True degrades to a plain
    # put: nothing hinted reaches the flash model.
    env, cluster, client = build_kv(inline_hints=False)

    def flow():
        yield from client.put(b"attrkey", b"v" * 1024, inline_hint=True)
        return (yield from client.get(b"attrkey"))

    assert run(env, flow()) == b"v" * 1024
    assert hinted_puts(cluster) == 0


# -- through KVFS -----------------------------------------------------------


def test_kvfs_metadata_and_small_files_are_hinted():
    p = default_params().with_overrides(kv_flash_model=True)
    env = Environment(seed=p.seed)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    cluster = KvCluster(env, fabric, p)
    fabric.attach("dpu")
    kv = KvClient(
        fabric, "dpu", cluster.shard_names(),
        route_fn=schema.routing_key, scan_route_fn=schema.scan_routing,
        inline_hints=True,
    )
    fs = Kvfs(env, kv, CpuPool(env, p.dpu_cores, perf=p.dpu_perf, switch_cost=0), p)

    def flow():
        attr = yield from fs.create(schema.ROOT_INO, b"small.txt")
        yield from fs.write(attr.ino, 0, b"x" * 512)  # small-file inline body
        return (yield from fs.read(attr.ino, 0, 512))

    assert run(env, flow()) == b"x" * 512
    # root attrs, ino-counter cas, file attr, dentry, small-file body...
    assert hinted_puts(cluster) >= 3
