"""2PC lock hygiene: retried prepares, aborts, crashes, parked writers.

The lock table is pure server state; these tests drive prepare/commit/abort
frames directly over the fabric (as a retrying client would) and assert that
no code path leaks a lock or strands a parked writer.
"""

from repro.fault import retry_policy_from
from repro.kv.client import KvClient
from repro.kv.server import KvCluster
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric


def make_rig(**overrides):
    p = default_params().with_overrides(kv_shards=2, **overrides)
    env = Environment(seed=p.seed)
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    cluster = KvCluster(env, fabric, p)
    fabric.attach("driver")
    return env, fabric, cluster, p


def rpc(fabric, dst, payload):
    return fabric.rpc("driver", dst, payload, 128)


def test_retried_prepare_acks_instead_of_self_deadlocking():
    env, fabric, cluster, _ = make_rig()
    shard = cluster.shards[0]
    ops = [("put", b"k1", b"v")]

    def flow():
        ok1 = yield from rpc(fabric, shard.name, ("prepare", "tx1", ops))
        # The coordinator timed out on the (delivered) ack and re-sends: the
        # shard must recognise its own staged txid, not block on its locks.
        ok2 = yield from rpc(fabric, shard.name, ("prepare", "tx1", ops))
        assert ok1 is True and ok2 is True
        yield from rpc(fabric, shard.name, ("commit", "tx1"))

    env.run(until=env.process(flow(), name="driver"))
    assert shard.engine.get(b"k1") == b"v"
    assert not shard._locks and not shard._staged


def test_prepare_crash_restart_then_retried_prepare_succeeds():
    env, fabric, cluster, _ = make_rig()
    shard = cluster.shards[0]
    ops = [("put", b"kx", b"v1"), ("put", b"ky", b"v2")]

    def flow():
        ok = yield from rpc(fabric, shard.name, ("prepare", "txc", ops))
        assert ok is True
        assert shard._locks == {b"kx", b"ky"}
        # Participant dies before the commit arrives: staged state and locks
        # are volatile and must evaporate with it.
        shard.crash()
        assert not shard._locks and not shard._staged
        yield from shard.restart()
        # The coordinator retries the whole round: the fresh prepare must
        # not collide with ghosts of the pre-crash locks.
        ok2 = yield from rpc(fabric, shard.name, ("prepare", "txc", ops))
        assert ok2 is True
        yield from rpc(fabric, shard.name, ("commit", "txc"))

    env.run(until=env.process(flow(), name="driver"))
    assert shard.engine.get(b"kx") == b"v1"
    assert shard.engine.get(b"ky") == b"v2"
    assert not shard._locks and not shard._staged


def test_abort_releases_every_staged_lock():
    env, fabric, cluster, _ = make_rig()
    shard = cluster.shards[0]
    ops = [("put", b"a", b"1"), ("delete", b"b"), ("put", b"c", b"3")]

    def flow():
        ok = yield from rpc(fabric, shard.name, ("prepare", "txa", ops))
        assert ok is True
        assert shard._locks == {b"a", b"b", b"c"}
        yield from rpc(fabric, shard.name, ("abort", "txa"))
        assert not shard._locks and not shard._staged
        # The keys are free again: a competing transaction can take them.
        ok2 = yield from rpc(fabric, shard.name, ("prepare", "txb", ops))
        assert ok2 is True
        yield from rpc(fabric, shard.name, ("abort", "txb"))

    env.run(until=env.process(flow(), name="driver"))
    assert not shard._locks
    # Aborted stages never touched the engine.
    assert shard.engine.get(b"a") is None


def test_parked_writer_wakes_on_commit():
    env, fabric, cluster, _ = make_rig()
    shard = cluster.shards[0]
    fabric.attach("writer")
    client = KvClient(fabric, "writer", cluster.shard_names())
    key = next(k for k in (b"p%07d" % i for i in range(64)) if client.route(k) == shard.name)
    commit_at = 400e-6

    def holder():
        ok = yield from rpc(fabric, shard.name, ("prepare", "txh", [("put", key, b"staged")]))
        assert ok is True
        yield env.timeout(commit_at)
        yield from rpc(fabric, shard.name, ("commit", "txh"))

    def writer():
        while key not in shard._locks:
            yield env.timeout(2e-6)
        # txh holds the lock: the put parks on the per-key event
        # (no busy-poll) until the commit releases it.
        yield from client.put(key, b"after")
        return env.now

    env.process(holder(), name="holder")
    done_at = env.run(until=env.process(writer(), name="writer"))

    assert done_at > commit_at  # genuinely waited for the lock release
    assert shard.engine.get(key) == b"after"  # writer applied post-commit
    assert not shard._locks and not shard._lock_waiters


def test_parked_writer_survives_lock_holder_crash():
    env, fabric, cluster, p = make_rig(rpc_timeout=500e-6)
    shard = cluster.shards[0]
    fabric.attach("writer")
    client = KvClient(
        fabric, "writer", cluster.shard_names(), retry=retry_policy_from(p)
    )
    key = next(k for k in (b"q%07d" % i for i in range(64)) if client.route(k) == shard.name)

    def holder():
        ok = yield from rpc(fabric, shard.name, ("prepare", "txd", [("put", key, b"staged")]))
        assert ok is True
        yield env.timeout(100e-6)
        # The lock holder's shard dies before commit: parked waiters must be
        # woken (the locks no longer exist), not stranded forever.
        shard.crash()
        yield env.timeout(300e-6)
        yield from shard.restart()

    def writer():
        while key not in shard._locks:
            yield env.timeout(2e-6)
        yield from client.put(key, b"mine")
        v = yield from client.get(key)
        return v

    env.process(holder(), name="holder")
    value = env.run(until=env.process(writer(), name="writer"))

    assert value == b"mine"
    assert client.timeouts_exhausted == 0
    assert not shard._locks and not shard._lock_waiters and not shard._staged
