"""Elastic rebalancer: live splits, migration protocol, crash exactly-once."""

import pytest

from repro.kv.client import KvClient, KvTransactionError
from repro.kv.rebalance import Rebalancer
from repro.kv.server import KvCluster
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric


def make_elastic(**overrides):
    params = default_params().with_overrides(
        kv_shards=2, kv_elastic=True, **overrides
    )
    env = Environment(seed=params.seed)
    fabric = Fabric(
        env, latency=params.net_latency, default_bandwidth=params.net_bandwidth
    )
    cluster = KvCluster(env, fabric, params)
    return env, fabric, cluster, params


def make_client(fabric, cluster, name):
    fabric.attach(name)
    return KvClient(
        fabric, name, cluster.shard_names(), ring=cluster.ring.clone()
    )


def keys_owned_by(ring, pool, shard):
    """8-byte keys from ``pool`` the ring currently routes to ``shard``."""
    return [k for k in pool if ring.lookup(k) == shard]


KEY_POOL = [b"h%07d" % i for i in range(600)]


# -- end to end: skew-driven split under live writers -------------------------


def test_skewed_load_triggers_split_and_keeps_data_consistent():
    env, fabric, cluster, params = make_elastic(
        kv_server_threads=2,
        kv_rebalance_interval=200e-6,
        kv_rebalance_threshold=20e-6,
        kv_max_shards=4,
        kv_migrate_chunk=2048,
    )
    reb = Rebalancer(env, fabric, cluster, params)

    # All traffic lands on kv0: the classic hot-shard skew.
    hot = keys_owned_by(cluster.ring, KEY_POOL, "kv0")[:180]
    assert len(hot) == 180
    n_writers, rounds = 6, 12
    writers = [make_client(fabric, cluster, f"w{i}") for i in range(n_writers)]
    verifier = make_client(fabric, cluster, "verify")

    def write(w, mine):
        for r in range(rounds):
            for k in mine:
                yield from writers[w].put(k, b"v%02d-%s" % (r, k))
                yield from writers[w].get(k)

    procs = [
        env.process(write(w, hot[w::n_writers]), name=f"w{w}")
        for w in range(n_writers)
    ]

    def coordinate():
        yield env.all_of(procs)
        # Let any in-flight migration finish before verifying.
        for _ in range(1000):
            if not reb._busy:
                break
            yield env.timeout(100e-6)
        assert not reb._busy

    env.run(until=env.process(coordinate(), name="coord"))

    assert reb.splits >= 1
    assert len(cluster.shards) >= 3
    assert cluster.ring.version >= 2
    # Writers raced the cutover: someone must have chased the ring.
    assert sum(w.stale_reroutes for w in writers) > 0

    def verify():
        # Fan-out scan merges every shard: each key exactly once (the purge
        # removed the source's copy, the ingest created the destination's).
        items = yield from verifier.scan_prefix(b"h")
        assert len(items) == len(hot)
        final = b"v%02d" % (rounds - 1)
        for k, v in items:
            assert v.startswith(final), (k, v)
        # Point reads re-route through the grown ring.
        for k in hot[:20]:
            v = yield from verifier.get(k)
            assert v == final + b"-" + k

    env.run(until=env.process(verify(), name="verify"))

    # The moved range is physically gone from the source, not tombstoned.
    src = cluster.shards[0]
    moved = [k for k in hot if cluster.ring.lookup(k) != "kv0"]
    assert moved
    for k in moved[:20]:
        assert src.engine.get(k) is None


# -- crash during migration: exactly-once ingest ------------------------------


def test_destination_crash_mid_migration_is_exactly_once():
    env, fabric, cluster, params = make_elastic(
        kv_rebalance_interval=10.0,  # monitor loop stays out of the way
        kv_migrate_chunk=512,
    )
    reb = Rebalancer(env, fabric, cluster, params)
    client = make_client(fabric, cluster, "loader")
    keys = [b"m%07d" % i for i in range(260)]
    value = b"x" * 56

    def load():
        for k in keys:
            yield from client.put(k, value)

    env.run(until=env.process(load(), name="load"))
    src = cluster.shards[0]

    def crasher():
        while len(cluster.shards) < 3:
            yield env.timeout(10e-6)
        dst = cluster.shards[2]
        while dst.engine.stats.puts == 0:
            yield env.timeout(2e-6)
        dst.crash()
        # Longer than the chunk deadline: at least one in-flight chunk
        # times out and is re-driven against the restarted node.
        yield env.timeout(1.2e-3)
        yield from dst.restart()

    env.process(crasher(), name="crasher")

    def driver():
        yield from reb._split(src)

    env.run(until=env.process(driver(), name="driver"))

    dst = cluster.shards[2]
    assert dst.crashes == 1
    assert reb.chunk_retries > 0  # the crash window forced re-sends
    moved = [k for k in keys if cluster.ring.lookup(k) == dst.name]
    assert len(moved) > 10
    # Exactly-once: every moved key applied once despite the crash + retries
    # (WAL replay rebuilds state without re-counting, the idempotency filter
    # absorbs the re-driven chunks).
    assert dst.engine.stats.puts == len(moved)
    rec = reb.migrations[0]
    assert rec.keys == len(moved)
    for k in moved:
        assert dst.engine.get(k) == value
        assert src.engine.get(k) is None
    # Keys that did not move still live on their original shards.
    for k in keys:
        if k not in moved:
            owner = next(
                s for s in cluster.shards if s.name == cluster.ring.lookup(k)
            )
            assert owner.engine.get(k) == value


# -- migration protocol corners ------------------------------------------------


def test_prepare_refused_while_range_is_moving():
    env, fabric, cluster, params = make_elastic()
    client = make_client(fabric, cluster, "txn")
    # Two keys on different shards force 2PC; the whole keyspace is "moving".
    k0 = next(k for k in KEY_POOL if cluster.ring.lookup(k) == "kv0")
    k1 = next(k for k in KEY_POOL if cluster.ring.lookup(k) == "kv1")
    cluster.shards[0].begin_migration(lambda key: True)

    def flow():
        yield from client.batch_commit([("put", k0, b"a"), ("put", k1, b"b")])

    with pytest.raises(KvTransactionError):
        env.run(until=env.process(flow(), name="txn"))
    # The refused prepare left no locks behind on either participant.
    assert not cluster.shards[0]._locks
    assert not cluster.shards[1]._locks


def test_frozen_writer_parks_then_bounces_to_new_owner():
    env, fabric, cluster, params = make_elastic()
    client = make_client(fabric, cluster, "writer")
    ring = cluster.ring
    candidate = ring.clone()
    candidate.add_shard("kv2", steal_from="kv0")
    key = next(
        k
        for k in KEY_POOL
        if ring.lookup(k) == "kv0" and candidate.lookup(k) == "kv2"
    )
    src = cluster.shards[0]
    dst = cluster.add_shard_server("kv2")

    def moving(k):
        return candidate.lookup(k) == "kv2"

    src.begin_migration(moving)
    src.freeze_migration()

    def write():
        yield from client.put(key, b"post-cutover")
        return env.now

    p = env.process(write(), name="writer")

    def cutover():
        # The writer is parked on the freeze while we flip the ring.
        yield env.timeout(200e-6)
        ring.install(candidate.state())
        src.end_migration()

    env.process(cutover(), name="cutover")
    done_at = env.run(until=p)

    assert done_at >= 200e-6  # the put genuinely waited for the cutover
    assert client.stale_reroutes >= 1
    assert dst.engine.get(key) == b"post-cutover"
    assert src.engine.get(key) is None  # never applied on the old owner
