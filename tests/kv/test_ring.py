"""Consistent-hash ring: determinism, balance, versioned splits."""

import pytest

from repro.kv.ring import HashRing


KEYS = [b"key-%05d" % i for i in range(4000)]


def test_lookup_deterministic_and_total():
    a = HashRing(["kv0", "kv1", "kv2"], vnodes=64)
    b = HashRing(["kv0", "kv1", "kv2"], vnodes=64)
    owners = {k: a.lookup(k) for k in KEYS}
    assert all(b.lookup(k) == o for k, o in owners.items())
    # Every shard owns a meaningful share with 64 vnodes.
    counts = {s: 0 for s in a.shards}
    for o in owners.values():
        counts[o] += 1
    assert all(c > len(KEYS) * 0.15 for c in counts.values())


def test_add_shard_moves_keys_only_from_victim():
    ring = HashRing(["kv0", "kv1", "kv2"], vnodes=32)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.add_shard("kv3", steal_from="kv1")
    moved = taken_from = 0
    for k in KEYS:
        after = ring.lookup(k)
        if after != before[k]:
            moved += 1
            assert after == "kv3"  # only the new shard gains keys
            assert before[k] == "kv1"  # and only from the victim
            taken_from += 1
    assert moved > 0
    # Midpoint splits take roughly half the victim's keyspace.
    victim_before = sum(1 for o in before.values() if o == "kv1")
    assert 0.25 * victim_before < moved < 0.75 * victim_before


def test_split_is_a_pure_function_of_the_ring():
    r1 = HashRing(["kv0", "kv1"], vnodes=32)
    r2 = HashRing(["kv0", "kv1"], vnodes=32)
    r1.add_shard("kv2", steal_from="kv0")
    r2.add_shard("kv2", steal_from="kv0")
    assert r1.state() == r2.state()


def test_version_bumps_and_install():
    ring = HashRing(["kv0", "kv1"], vnodes=16)
    assert ring.version == 1
    replica = ring.clone()
    ring.add_shard("kv2")
    assert ring.version == 2
    assert replica.version == 1  # clones are independent
    replica.install(ring.state())
    assert replica.version == 2
    assert all(replica.lookup(k) == ring.lookup(k) for k in KEYS[:500])
    # Never roll back to an older state.
    old = HashRing(["kv0", "kv1"], vnodes=16).state()
    replica.install(old)
    assert replica.version == 2


def test_uniform_add_without_victim():
    ring = HashRing(["kv0"], vnodes=64)
    before = {k: ring.lookup(k) for k in KEYS}
    assert set(before.values()) == {"kv0"}
    ring.add_shard("kv1")
    after = {k: ring.lookup(k) for k in KEYS}
    share = sum(1 for o in after.values() if o == "kv1") / len(KEYS)
    assert 0.3 < share < 0.7


def test_duplicate_shard_rejected():
    ring = HashRing(["kv0", "kv1"], vnodes=8)
    with pytest.raises(ValueError):
        ring.add_shard("kv0")
