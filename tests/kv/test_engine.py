"""LSM engine unit + model-based property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kv.bloom import BloomFilter
from repro.kv.engine import LsmEngine, SortedRun, _prefix_end


# ---------------------------------------------------------------- Bloom
def test_bloom_no_false_negatives():
    bf = BloomFilter(100)
    keys = [f"key-{i}".encode() for i in range(100)]
    for k in keys:
        bf.add(k)
    assert all(k in bf for k in keys)


def test_bloom_filters_most_absent_keys():
    bf = BloomFilter(200, fp_rate=0.01)
    for i in range(200):
        bf.add(f"present-{i}".encode())
    fps = sum(1 for i in range(2000) if f"absent-{i}".encode() in bf)
    assert fps < 100  # generous bound for 1% target


def test_bloom_bad_fp_rate():
    with pytest.raises(ValueError):
        BloomFilter(10, fp_rate=1.5)


# ---------------------------------------------------------------- SortedRun
def test_sorted_run_get_and_slice():
    run = SortedRun([(b"a", b"1"), (b"c", b"3"), (b"e", None)])
    assert run.get(b"a") == (True, b"1")
    assert run.get(b"b") == (False, None)
    assert run.get(b"e") == (True, None)  # tombstone is "found"
    assert list(run.slice(b"b", b"z")) == [(b"c", b"3"), (b"e", None)]
    assert list(run.slice(b"a", None)) == [(b"a", b"1"), (b"c", b"3"), (b"e", None)]


# ---------------------------------------------------------------- prefix end
def test_prefix_end_simple():
    assert _prefix_end(b"abc") == b"abd"


def test_prefix_end_carry():
    assert _prefix_end(b"a\xff") == b"b"
    assert _prefix_end(b"\xff\xff") is None


# ---------------------------------------------------------------- LsmEngine
def test_put_get_roundtrip():
    e = LsmEngine()
    e.put(b"k", b"v")
    assert e.get(b"k") == b"v"
    assert e.get(b"missing") is None


def test_overwrite_returns_latest():
    e = LsmEngine()
    e.put(b"k", b"v1")
    e.put(b"k", b"v2")
    assert e.get(b"k") == b"v2"


def test_delete_hides_key():
    e = LsmEngine()
    e.put(b"k", b"v")
    e.delete(b"k")
    assert e.get(b"k") is None
    assert not e.contains(b"k")


def test_delete_shadows_older_run_version():
    e = LsmEngine(memtable_limit_bytes=1)  # flush after every op
    e.put(b"k", b"v")
    e.delete(b"k")
    assert e.get(b"k") is None
    e.compact()
    assert e.get(b"k") is None
    assert e.count_live() == 0


def test_flush_creates_run_and_preserves_data():
    e = LsmEngine()
    for i in range(50):
        e.put(f"key{i:03d}".encode(), f"val{i}".encode())
    e.flush()
    assert len(e.runs) == 1
    assert e.memtable == {}
    for i in range(50):
        assert e.get(f"key{i:03d}".encode()) == f"val{i}".encode()


def test_auto_flush_on_memtable_limit():
    e = LsmEngine(memtable_limit_bytes=64)
    for i in range(20):
        e.put(f"k{i}".encode(), b"x" * 16)
    assert e.stats.flushes >= 1
    assert all(e.get(f"k{i}".encode()) == b"x" * 16 for i in range(20))


def test_compaction_bounds_run_count():
    e = LsmEngine(memtable_limit_bytes=16, max_runs=3)
    for i in range(100):
        e.put(f"key{i:04d}".encode(), b"v" * 8)
    assert len(e.runs) <= 4
    assert e.stats.compactions >= 1


def test_scan_prefix_ordered():
    e = LsmEngine()
    e.put(b"dir1/b", b"2")
    e.put(b"dir1/a", b"1")
    e.put(b"dir2/x", b"9")
    e.put(b"dir1/c", b"3")
    items = e.scan_prefix(b"dir1/")
    assert items == [(b"dir1/a", b"1"), (b"dir1/b", b"2"), (b"dir1/c", b"3")]


def test_scan_prefix_spans_memtable_and_runs():
    e = LsmEngine()
    e.put(b"p/a", b"old-a")
    e.put(b"p/b", b"b")
    e.flush()
    e.put(b"p/a", b"new-a")  # newer version in memtable
    e.put(b"p/c", b"c")
    items = e.scan_prefix(b"p/")
    assert items == [(b"p/a", b"new-a"), (b"p/b", b"b"), (b"p/c", b"c")]


def test_scan_hides_tombstones():
    e = LsmEngine()
    e.put(b"p/a", b"1")
    e.put(b"p/b", b"2")
    e.flush()
    e.delete(b"p/a")
    assert e.scan_prefix(b"p/") == [(b"p/b", b"2")]


def test_scan_limit():
    e = LsmEngine()
    for i in range(10):
        e.put(f"p/{i}".encode(), b"v")
    items = e.scan_prefix(b"p/", limit=3)
    assert len(items) == 3
    assert items[0][0] == b"p/0"


def test_scan_range_bounds():
    e = LsmEngine()
    for c in b"abcdef":
        e.put(bytes([c]), b"v")
    items = e.scan_range(b"b", b"e")
    assert [k for k, _ in items] == [b"b", b"c", b"d"]


def test_type_errors():
    e = LsmEngine()
    with pytest.raises(TypeError):
        e.put("str", b"v")  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        e.put(b"k", 5)  # type: ignore[arg-type]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "get", "flush", "compact"]),
            st.binary(min_size=1, max_size=6),
            st.binary(min_size=0, max_size=10),
        ),
        max_size=80,
    )
)
def test_engine_matches_dict_model(ops):
    """The LSM engine behaves exactly like a dict, whatever the op sequence."""
    e = LsmEngine(memtable_limit_bytes=48)  # force frequent flushes
    model: dict[bytes, bytes] = {}
    for kind, k, v in ops:
        if kind == "put":
            e.put(k, v)
            model[k] = v
        elif kind == "delete":
            e.delete(k)
            model.pop(k, None)
        elif kind == "get":
            assert e.get(k) == model.get(k)
        elif kind == "flush":
            e.flush()
        else:
            e.compact()
    # Final full agreement, including ordered iteration.
    assert e.scan_range(b"", None) == sorted(model.items())


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=30, unique=True),
    prefix=st.binary(min_size=1, max_size=3),
)
def test_scan_prefix_matches_filter_model(keys, prefix):
    e = LsmEngine(memtable_limit_bytes=64)
    for k in keys:
        e.put(k, k)
    expected = sorted((k, k) for k in keys if k.startswith(prefix))
    assert e.scan_prefix(prefix) == expected
