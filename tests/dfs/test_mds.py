"""MDS-level tests: partitioning, forwarding, delegations, lazy metadata."""

import pytest

from repro.dfs import DFS_ROOT_INO, build_dfs, mds_name
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric

MSG = 64


def build():
    env = Environment()
    p = default_params()
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    mds, dataservers, layout = build_dfs(env, fabric, p)
    fabric.attach("c")
    return env, p, fabric, mds, dataservers, layout


def rpc(env, fabric, dst, op):
    def flow():
        return (yield from fabric.rpc("c", dst, op, MSG))

    return env.run(until=env.process(flow()))


def test_ino_allocation_respects_home_partition():
    env, p, fabric, mds, *_ = build()
    # Create files under root (home of ino 0 = mds0); allocated inos must be
    # homed on the serving MDS.
    for i in range(6):
        attr = rpc(env, fabric, mds.home_of(DFS_ROOT_INO), ("create", DFS_ROOT_INO, f"f{i}".encode(), 0o100644))
        assert attr.ino % p.n_mds == DFS_ROOT_INO % p.n_mds


def test_entry_mds_forwards_foreign_ops():
    env, p, fabric, mds, *_ = build()
    attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, b"f", 0o100644))
    # Ask a *different* MDS for the attr: it must forward to the home.
    foreign = mds_name((attr.ino + 1) % p.n_mds)
    got = rpc(env, fabric, foreign, ("getattr", attr.ino))
    assert got is not None and got.ino == attr.ino
    assert mds.total_forwards() >= 1


def test_direct_home_routing_avoids_forwarding():
    env, p, fabric, mds, *_ = build()
    attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, b"f", 0o100644))
    before = mds.total_forwards()
    rpc(env, fabric, mds.home_of(attr.ino), ("getattr", attr.ino))
    assert mds.total_forwards() == before


def test_lookup_resolves_remote_attr_internally():
    env, p, fabric, mds, *_ = build()
    attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, b"xfile", 0o100644))
    got = rpc(env, fabric, mds.home_of(DFS_ROOT_INO), ("lookup", DFS_ROOT_INO, b"xfile"))
    assert got.ino == attr.ino


def test_setsize_is_grow_only():
    env, p, fabric, mds, *_ = build()
    attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, b"s", 0o100644))
    home = mds.home_of(attr.ino)
    rpc(env, fabric, home, ("setsize", attr.ino, 100))
    rpc(env, fabric, home, ("setsize", attr.ino, 50))  # ignored
    got = rpc(env, fabric, home, ("getattr", attr.ino))
    assert got.size == 100


def test_batch_setsize():
    env, p, fabric, mds, *_ = build()
    inos = []
    for i in range(3):
        attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, f"b{i}".encode(), 0o100644))
        inos.append(attr.ino)
    home = mds.home_of(inos[0])
    same_home = [i for i in inos if mds.home_of(i) == home]
    rpc(env, fabric, home, ("batch_setsize", [(i, 777) for i in same_home]))
    for i in same_home:
        got = rpc(env, fabric, home, ("getattr", i))
        assert got.size == 777


def test_delegation_grant_conflict_release_cycle():
    env, p, fabric, mds, *_ = build()
    fabric.attach("other")
    home = mds.home_of(DFS_ROOT_INO)
    status, lease = rpc(env, fabric, home, ("deleg_acquire", DFS_ROOT_INO, "dir"))
    assert status == "granted" and len(lease) == 64

    def other_acquire():
        return (yield from fabric.rpc("other", home, ("deleg_acquire", DFS_ROOT_INO, "dir"), MSG))

    status2, lease2 = env.run(until=env.process(other_acquire()))
    assert status2 == "denied" and lease2 == []
    # Release, then the other client can get it.
    rpc(env, fabric, home, ("deleg_release", DFS_ROOT_INO, "dir"))
    status3, _ = env.run(until=env.process(other_acquire()))
    assert status3 == "granted"


def test_dir_delegation_lease_inos_are_home_local():
    env, p, fabric, mds, *_ = build()
    home_idx = DFS_ROOT_INO % p.n_mds
    _status, lease = rpc(env, fabric, mds_name(home_idx), ("deleg_acquire", DFS_ROOT_INO, "dir"))
    assert all(ino % p.n_mds == home_idx for ino in lease)


def test_batch_create_installs_leased_inos():
    env, p, fabric, mds, *_ = build()
    home = mds.home_of(DFS_ROOT_INO)
    _s, lease = rpc(env, fabric, home, ("deleg_acquire", DFS_ROOT_INO, "dir"))
    entries = [(f"leased{i}".encode(), lease[i], 0o100644) for i in range(4)]
    created = rpc(env, fabric, home, ("batch_create", DFS_ROOT_INO, entries))
    assert sorted(created) == sorted(lease[:4])
    listing = rpc(env, fabric, home, ("readdir", DFS_ROOT_INO))
    assert len(listing) == 4


def test_write_small_does_server_side_ec():
    env, p, fabric, mds, dataservers, layout = build()
    attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, b"packed", 0o100644))
    home = mds.home_of(attr.ino)
    payload = b"P" * layout.stripe_size
    rpc(env, fabric, home, ("write_small", attr.ino, 0, payload))
    # Parity shards exist on the data servers — EC happened at the MDS.
    pl = layout.placement(attr.ino, 0)
    units = [dataservers[loc.server].units.get(loc.key) for loc in pl.shards]
    assert all(u is not None for u in units)
    units[2] = None
    assert layout.decode_stripe(units) == payload
    # And the size was updated synchronously.
    got = rpc(env, fabric, home, ("getattr", attr.ino))
    assert got.size == layout.stripe_size


def test_read_via_mds_returns_data():
    env, p, fabric, mds, *_ = build()
    attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, b"r", 0o100644))
    home = mds.home_of(attr.ino)
    rpc(env, fabric, home, ("write_small", attr.ino, 0, b"relay me"))
    data = rpc(env, fabric, home, ("read_via_mds", attr.ino, 0, 8))
    assert data == b"relay me"


def test_unlink_removes_dentry_and_attr():
    env, p, fabric, mds, *_ = build()
    attr = rpc(env, fabric, "mds0", ("create", DFS_ROOT_INO, b"gone", 0o100644))
    home = mds.home_of(DFS_ROOT_INO)
    rpc(env, fabric, home, ("unlink", DFS_ROOT_INO, b"gone"))
    assert rpc(env, fabric, home, ("lookup", DFS_ROOT_INO, b"gone")) is None
