"""DFS integration tests: MDS, data servers, EC stripes, all three clients."""

import pytest

from repro.dfs import (
    DFS_ROOT_INO,
    DfsError,
    OffloadedDfsClient,
    StandardNfsClient,
    build_dfs,
)
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.network import Fabric


def build(params=None):
    env = Environment()
    p = params or default_params()
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    mds, dataservers, layout = build_dfs(env, fabric, p)
    host_cpu = CpuPool(env, p.host_cores, switch_cost=p.host_switch_cost)
    dpu_cpu = CpuPool(env, p.dpu_cores, perf=p.dpu_perf, switch_cost=p.dpu_switch_cost)
    fabric.attach("std-client")
    fabric.attach("opt-client")
    fabric.attach("dpc-client")
    std = StandardNfsClient(env, fabric, "std-client", p.n_mds, host_cpu, p)
    opt = OffloadedDfsClient(
        env, fabric, "opt-client", p.n_mds, layout, host_cpu, p,
        cpu_read=p.opt_client_cpu_read, cpu_write=p.opt_client_cpu_write,
    )
    dpc = OffloadedDfsClient(
        env, fabric, "dpc-client", p.n_mds, layout, dpu_cpu, p,
        cpu_read=p.dpc_dfs_cpu_read, cpu_write=p.dpc_dfs_cpu_write,
        ec_scale=0.3, cpu_tag="dpc-dfs",
    )
    return env, p, fabric, mds, dataservers, layout, std, opt, dpc


def run(env, gen):
    return env.run(until=env.process(gen))


# ---------------------------------------------------------------- standard client
def test_std_create_lookup_getattr():
    env, *_, std, _opt, _dpc = build()

    def flow():
        attr = yield from std.create(DFS_ROOT_INO, b"file")
        found = yield from std.lookup(DFS_ROOT_INO, b"file")
        st = yield from std.getattr(attr.ino)
        return attr.ino, found.ino, st.ino

    a, b, c = run(env, flow())
    assert a == b == c


def test_std_duplicate_create_error():
    env, *_, std, _o, _d = build()

    def flow():
        yield from std.create(DFS_ROOT_INO, b"dup")
        try:
            yield from std.create(DFS_ROOT_INO, b"dup")
        except DfsError as e:
            return str(e)

    assert run(env, flow()) == "EEXIST"


def test_std_write_read_roundtrip():
    env, *_, std, _o, _d = build()

    def flow():
        attr = yield from std.create(DFS_ROOT_INO, b"data")
        payload = bytes(range(256)) * 64  # 16 KiB
        yield from std.write(attr.ino, 0, payload)
        got = yield from std.read(attr.ino, 0, len(payload))
        return payload, got

    payload, got = run(env, flow())
    assert got == payload


def test_std_write_is_erasure_coded_on_servers():
    env, p, _f, _m, dataservers, layout, std, _o, _d = build()

    def flow():
        attr = yield from std.create(DFS_ROOT_INO, b"ec")
        yield from std.write(attr.ino, 0, b"E" * layout.stripe_size)
        return attr.ino

    ino = run(env, flow())
    # Every shard of stripe 0, including parity, must exist on its server.
    pl = layout.placement(ino, 0)
    for loc in pl.shards:
        assert pl and dataservers[loc.server].units.get(loc.key) is not None


def test_std_unlink():
    env, *_, std, _o, _d = build()

    def flow():
        yield from std.create(DFS_ROOT_INO, b"gone")
        yield from std.unlink(DFS_ROOT_INO, b"gone")
        return (yield from std.lookup(DFS_ROOT_INO, b"gone"))

    assert run(env, flow()) is None


def test_std_readdir():
    env, *_, std, _o, _d = build()

    def flow():
        for n in [b"c", b"a", b"b"]:
            yield from std.create(DFS_ROOT_INO, n)
        return (yield from std.readdir(DFS_ROOT_INO))

    entries = run(env, flow())
    assert [n for n, _ in entries] == [b"a", b"b", b"c"]


def test_forwarding_happens_for_standard_client():
    """The entry MDS forwards ops whose home is elsewhere."""
    env, p, _f, mds, *_ , std, _o, _d = build()

    def flow():
        for i in range(12):
            yield from std.create(DFS_ROOT_INO, f"f{i}".encode())
            # getattr on inos homed across all MDSes forces forwards
        for ino in range(1, 9):
            yield from std.getattr(ino)

    run(env, flow())
    assert mds.total_forwards() > 0


# ---------------------------------------------------------------- optimized client
def test_opt_no_forwarding_with_metadata_view():
    env, p, _f, mds, *_ , _s, opt, _d = build()

    def flow():
        for i in range(8):
            attr = yield from opt.create(DFS_ROOT_INO, f"v{i}".encode())
            yield from opt.getattr(attr.ino)
        yield from opt.flush_metadata()

    run(env, flow())
    assert mds.total_forwards() == 0


def test_opt_write_read_roundtrip_direct():
    env, *_, _s, opt, _d = build()

    def flow():
        attr = yield from opt.create(DFS_ROOT_INO, b"dio")
        payload = b"direct-io" * 5000  # 45 KB, crosses stripes
        yield from opt.write(attr.ino, 0, payload)
        got = yield from opt.read(attr.ino, 0, len(payload))
        return payload, got

    payload, got = run(env, flow())
    assert got == payload


def test_opt_partial_stripe_write_updates_parity():
    env, p, _f, _m, dataservers, layout, _s, opt, _d = build()

    def flow():
        attr = yield from opt.create(DFS_ROOT_INO, b"rmw")
        yield from opt.write(attr.ino, 0, b"A" * layout.stripe_size)
        # Overwrite one 8K unit in the middle.
        yield from opt.write(attr.ino, layout.stripe_unit, b"B" * layout.stripe_unit)
        return attr.ino

    ino = run(env, flow())
    # Reconstructing from parity must give the updated data.
    pl = layout.placement(ino, 0)
    units = [dataservers[loc.server].units[loc.key] for loc in pl.shards]
    units[1] = None  # kill the updated data unit
    recovered = layout.decode_stripe(units)
    expected = (
        b"A" * layout.stripe_unit + b"B" * layout.stripe_unit + b"A" * 2 * layout.stripe_unit
    )
    assert recovered == expected


def test_opt_and_std_see_same_files():
    """Both clients address the same backend."""
    env, *_, std, opt, _d = build()

    def flow():
        attr = yield from opt.create(DFS_ROOT_INO, b"shared")
        yield from opt.write(attr.ino, 0, b"written by opt")
        yield from opt.flush_metadata()
        found = yield from std.lookup(DFS_ROOT_INO, b"shared")
        data = yield from std.read(found.ino, 0, 14)
        return data

    assert run(env, flow()) == b"written by opt"


def test_opt_delegated_creates_are_batched():
    env, p, _f, mds, *_, _s, opt, _d = build()

    def flow():
        for i in range(10):
            yield from opt.create(DFS_ROOT_INO, f"batch{i}".encode())
        # Fewer than 10 MDS RPCs so far (one delegation acquire).
        served_before_flush = mds.total_ops()
        yield from opt.flush_metadata()
        entries = yield from opt.readdir(DFS_ROOT_INO)
        return served_before_flush, entries

    served, entries = run(env, flow())
    assert served <= 2  # deleg acquire (+possibly nothing else)
    assert len(entries) == 10
    assert opt.deleg_hits >= 10


def test_opt_lazy_size_updates_reach_mds_on_flush():
    env, *_, std, opt, _d = build()

    def flow():
        attr = yield from opt.create(DFS_ROOT_INO, b"lazy")
        yield from opt.write(attr.ino, 0, b"z" * 10000)
        yield from opt.flush_metadata()
        st = yield from std.getattr(attr.ino)
        return st.size

    assert run(env, flow()) == 10000


def test_opt_file_delegation_caching():
    env, *_, _s, opt, _d = build()

    def flow():
        attr = yield from opt.create(DFS_ROOT_INO, b"locked")
        ok1 = yield from opt.acquire_file_delegation(attr.ino)
        hits_before = opt.deleg_hits
        ok2 = yield from opt.acquire_file_delegation(attr.ino)
        return ok1, ok2, opt.deleg_hits - hits_before

    ok1, ok2, extra_hits = run(env, flow())
    assert ok1 and ok2 and extra_hits == 1


def test_delegation_conflict_denied():
    env, p, fabric, _m, _ds, layout, _s, opt, dpc = build()

    def flow():
        attr = yield from opt.create(DFS_ROOT_INO, b"contested")
        yield from opt.flush_metadata()
        ok_opt = yield from opt.acquire_file_delegation(attr.ino)
        ok_dpc = yield from dpc.acquire_file_delegation(attr.ino)
        return ok_opt, ok_dpc

    ok_opt, ok_dpc = run(env, flow())
    assert ok_opt is True and ok_dpc is False


# ---------------------------------------------------------------- degraded reads
def test_degraded_read_survives_two_dead_servers():
    env, p, _f, _m, dataservers, layout, _s, opt, _d = build()

    def flow():
        attr = yield from opt.create(DFS_ROOT_INO, b"resilient")
        payload = bytes(range(256)) * (layout.stripe_size // 256)
        yield from opt.write(attr.ino, 0, payload)
        pl = layout.placement(attr.ino, 0)
        dead = {pl.shards[0].server, pl.shards[2].server}
        data = yield from opt.stripeio.read_degraded(attr.ino, 0, dead)
        return payload, data

    payload, data = run(env, flow())
    assert data == payload


# ---------------------------------------------------------------- performance shape
def test_opt_client_faster_but_hungrier_than_std():
    """Figure 1's motivation: ~4x IOPS at many-x CPU."""
    p = default_params()

    def bench(client_kind, threads=32, ops=6):
        env, _p, _f, _m, _ds, _lay, std, opt, _dpc = build()
        client = std if client_kind == "std" else opt
        done = []

        def prep():
            attr = yield from client.create(DFS_ROOT_INO, b"bigfile")
            yield from client.write(attr.ino, 0, b"P" * (1 << 20))
            return attr.ino

        ino = run(env, prep())
        cpu = client.cpu if client_kind == "opt" else std.cpu
        cpu.begin_window()
        t0 = env.now

        def worker(i):
            for j in range(ops):
                off = ((i * 7919 + j * 104729) % 128) * 8192
                yield from client.write(ino, off, b"w" * 8192)
            done.append(i)

        for i in range(threads):
            env.process(worker(i))
        env.run()
        iops = threads * ops / (env.now - t0)
        cores = cpu.window_cores_used()
        return iops, cores

    std_iops, std_cores = bench("std")
    opt_iops, opt_cores = bench("opt")
    assert opt_iops / std_iops > 2.0
    assert opt_cores / max(std_cores, 1e-9) > 3.0
