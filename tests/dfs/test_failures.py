"""Failure injection: data-server crashes, degraded reads/writes, limits."""

import pytest

from repro.dfs import DFS_ROOT_INO, StorageUnavailable, build_dfs
from repro.dfs.clients import OffloadedDfsClient
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.network import Fabric


def build():
    env = Environment()
    p = default_params()
    fabric = Fabric(env, latency=p.net_latency, default_bandwidth=p.net_bandwidth)
    mds, dataservers, layout = build_dfs(env, fabric, p)
    cpu = CpuPool(env, p.host_cores, switch_cost=0)
    fabric.attach("client")
    client = OffloadedDfsClient(
        env, fabric, "client", p.n_mds, layout, cpu, p,
        cpu_read=p.opt_client_cpu_read, cpu_write=p.opt_client_cpu_write,
    )
    return env, dataservers, layout, client


def run(env, gen):
    return env.run(until=env.process(gen))


def make_file(env, client, payload):
    def prep():
        attr = yield from client.create(DFS_ROOT_INO, b"victim")
        yield from client.write(attr.ino, 0, payload)
        return attr.ino

    return run(env, prep())


def test_read_survives_one_dead_server():
    env, dataservers, layout, client = build()
    payload = bytes(range(256)) * (2 * layout.stripe_size // 256)
    ino = make_file(env, client, payload)
    # Kill the server holding stripe 0's first data unit.
    loc = layout.placement(ino, 0).shards[0]
    dataservers[loc.server].fail()

    def flow():
        return (yield from client.read(ino, 0, len(payload)))

    assert run(env, flow()) == payload


def test_read_survives_m_dead_servers():
    env, dataservers, layout, client = build()
    payload = b"\x77" * layout.stripe_size
    ino = make_file(env, client, payload)
    pl = layout.placement(ino, 0)
    dataservers[pl.shards[0].server].fail()
    dataservers[pl.shards[3].server].fail()  # two of six (m = 2)

    def flow():
        return (yield from client.read(ino, 0, len(payload)))

    assert run(env, flow()) == payload


def test_read_fails_beyond_m_dead_servers():
    env, dataservers, layout, client = build()
    payload = b"\x66" * layout.stripe_size
    ino = make_file(env, client, payload)
    pl = layout.placement(ino, 0)
    for i in range(3):  # three dead > m=2
        dataservers[pl.shards[i].server].fail()

    def flow():
        try:
            yield from client.read(ino, 0, len(payload))
        except StorageUnavailable as e:
            return e

    assert isinstance(run(env, flow()), StorageUnavailable)


def test_degraded_write_keeps_stripe_recoverable():
    env, dataservers, layout, client = build()
    payload = b"A" * layout.stripe_size
    ino = make_file(env, client, payload)
    pl = layout.placement(ino, 0)
    dead = pl.shards[1].server
    dataservers[dead].fail()

    def flow():
        # Partial-stripe write while one server is down -> degraded RMW.
        yield from client.write(ino, layout.stripe_unit, b"B" * layout.stripe_unit)
        # Read back with the server still down.
        data = yield from client.read(ino, 0, layout.stripe_size)
        return data

    data = run(env, flow())
    expected = (
        b"A" * layout.stripe_unit + b"B" * layout.stripe_unit + b"A" * 2 * layout.stripe_unit
    )
    assert data == expected


def test_recovered_server_serves_again():
    env, dataservers, layout, client = build()
    payload = b"R" * layout.stripe_size
    ino = make_file(env, client, payload)
    loc = layout.placement(ino, 0).shards[0]
    dataservers[loc.server].fail()

    def flow():
        d1 = yield from client.read(ino, 0, 16)
        dataservers[loc.server].recover()
        d2 = yield from client.read(ino, 0, 16)
        return d1, d2

    d1, d2 = run(env, flow())
    assert d1 == d2 == b"R" * 16


def test_full_stripe_write_tolerates_m_failures():
    env, dataservers, layout, client = build()

    def flow():
        attr = yield from client.create(DFS_ROOT_INO, b"new")
        pl = layout.placement(attr.ino, 0)
        dataservers[pl.shards[4].server].fail()  # one parity server down
        yield from client.write(attr.ino, 0, b"W" * layout.stripe_size)
        data = yield from client.read(attr.ino, 0, layout.stripe_size)
        return data

    assert run(env, flow()) == b"W" * layout.stripe_size


def test_degraded_read_costs_more_than_healthy():
    env, dataservers, layout, client = build()
    payload = b"T" * layout.stripe_size
    ino = make_file(env, client, payload)

    def timed_read():
        t0 = env.now
        yield from client.read(ino, 0, 8192)
        return env.now - t0

    healthy = run(env, timed_read())
    loc = layout.placement(ino, 0).shards[0]
    dataservers[loc.server].fail()
    degraded = run(env, timed_read())
    assert degraded > healthy  # reconstruction reads k shards, not 1
