"""Property test: EC stripe I/O behaves like a plain byte array.

Random sequences of writes and reads through the full client-side-EC path
(encode, partial-stripe parity RMW, placement, data servers) must read back
exactly what a flat bytearray would — and every stripe must stay degradable
(any m losses recoverable) afterwards.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dfs import build_dfs
from repro.dfs.stripeio import StripeIO
from repro.params import default_params
from repro.sim.core import Environment
from repro.sim.network import Fabric

FILE_ID = 7
SPAN = 6 * 32768  # six stripes of RS(4,2) x 8K units


def build():
    env = Environment()
    p = default_params()
    fabric = Fabric(env, latency=1e-6, default_bandwidth=p.net_bandwidth)
    _mds, dataservers, layout = build_dfs(env, fabric, p)
    fabric.attach("c")
    sio = StripeIO(env, fabric, layout, p, "c")
    return env, dataservers, layout, sio


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),  # is_write
            st.integers(0, SPAN - 1),  # offset
            st.integers(1, 20000),  # length
            st.integers(0, 255),  # fill byte
        ),
        min_size=1,
        max_size=12,
    )
)
def test_stripeio_matches_bytearray_model(ops):
    env, dataservers, layout, sio = build()
    model = bytearray(SPAN)

    def scenario():
        for is_write, offset, length, fill in ops:
            length = min(length, SPAN - offset)
            if length <= 0:
                continue
            if is_write:
                data = bytes([fill]) * length
                yield from sio.write(FILE_ID, offset, data)
                model[offset : offset + length] = data
            else:
                got = yield from sio.read(FILE_ID, offset, length)
                assert got == bytes(model[offset : offset + length])
        # Full-span agreement.
        got = yield from sio.read(FILE_ID, 0, SPAN)
        assert got == bytes(model)

    env.run(until=env.process(scenario()))
    # Invariant: every touched stripe remains recoverable from any k shards.
    rs = layout.rs

    def degraded_check():
        for stripe in range(SPAN // layout.stripe_size):
            pl = layout.placement(FILE_ID, stripe)
            stored = [dataservers[loc.server].units.get(loc.key) for loc in pl.shards]
            if all(s is None for s in stored):
                continue  # never written
            payload = bytes(model[stripe * layout.stripe_size : (stripe + 1) * layout.stripe_size])
            # Knock out the first data shard and a parity shard.
            damaged = [
                None if i in (0, rs.k) else (stored[i] or bytes(layout.stripe_unit))
                for i in range(rs.k + rs.m)
            ]
            assert layout.decode_stripe(damaged) == payload
        yield from ()

    env.run(until=env.process(degraded_check()))
