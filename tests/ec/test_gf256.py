"""Field-axiom property tests + unit tests for GF(2^8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import gf256

elems = st.integers(0, 255)
nonzero = st.integers(1, 255)


@given(elems, elems)
def test_addition_is_xor_and_commutative(a, b):
    assert gf256.add(a, b) == (a ^ b) == gf256.add(b, a)


@given(elems)
def test_additive_identity_and_self_inverse(a):
    assert gf256.add(a, 0) == a
    assert gf256.add(a, a) == 0


@given(elems, elems)
def test_multiplication_commutative(a, b):
    assert gf256.mul(a, b) == gf256.mul(b, a)


@given(elems, elems, elems)
def test_multiplication_associative(a, b, c):
    assert gf256.mul(gf256.mul(a, b), c) == gf256.mul(a, gf256.mul(b, c))


@given(elems, elems, elems)
def test_distributivity(a, b, c):
    left = gf256.mul(a, gf256.add(b, c))
    right = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
    assert left == right


@given(elems)
def test_multiplicative_identity(a):
    assert gf256.mul(a, 1) == a


@given(nonzero)
def test_inverse_roundtrip(a):
    assert gf256.mul(a, gf256.inv(a)) == 1


@given(elems, nonzero)
def test_division_inverts_multiplication(a, b):
    assert gf256.div(gf256.mul(a, b), b) == a


def test_zero_has_no_inverse():
    with pytest.raises(ZeroDivisionError):
        gf256.inv(0)
    with pytest.raises(ZeroDivisionError):
        gf256.div(5, 0)


@given(nonzero, st.integers(0, 600))
def test_pow_matches_repeated_mul(a, n):
    expected = 1
    for _ in range(n):
        expected = gf256.mul(expected, a)
    assert gf256.pow_(a, n) == expected


def test_exp_log_tables_consistent():
    for a in range(1, 256):
        assert gf256.EXP[gf256.LOG[a]] == a


def test_exp_table_generates_whole_field():
    seen = {int(gf256.EXP[i]) for i in range(255)}
    assert seen == set(range(1, 256))


@given(elems, st.binary(min_size=1, max_size=64))
def test_mul_bytes_matches_scalar(coef, data):
    buf = np.frombuffer(data, dtype=np.uint8)
    out = gf256.mul_bytes(coef, buf)
    for i, b in enumerate(data):
        assert out[i] == gf256.mul(coef, b)


@given(elems, st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
def test_addmul_matches_scalar(coef, d1, d2):
    n = min(len(d1), len(d2))
    dst = np.frombuffer(d1[:n], dtype=np.uint8).copy()
    src = np.frombuffer(d2[:n], dtype=np.uint8)
    expect = [gf256.add(d1[i], gf256.mul(coef, d2[i])) for i in range(n)]
    gf256.addmul(dst, coef, src)
    assert list(dst) == expect


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6))
def test_matinv_roundtrip_on_vandermonde_derived(n):
    # The row-reduced Vandermonde top block is invertible by construction.
    v = gf256.vandermonde(n + 2, n)
    top = v[:n, :]
    top_inv = gf256.matinv(top)
    prod = gf256.matmul(top, top_inv)
    assert np.array_equal(prod, np.eye(n, dtype=np.uint8))


def test_matinv_singular_rejected():
    m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(np.linalg.LinAlgError):
        gf256.matinv(m)


def test_matmul_shape_mismatch_rejected():
    a = np.zeros((2, 3), dtype=np.uint8)
    b = np.zeros((2, 2), dtype=np.uint8)
    with pytest.raises(ValueError):
        gf256.matmul(a, b)


def test_vandermonde_first_rows():
    v = gf256.vandermonde(3, 3)
    assert list(v[0]) == [1, 0, 0]  # 0^0 = 1 convention, 0^j = 0
    assert list(v[1]) == [1, 1, 1]
    assert list(v[2]) == [1, 2, 4]
