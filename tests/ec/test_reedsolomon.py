"""Reed-Solomon and stripe-layout tests, including erasure property tests."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import ECError, ReedSolomon, StripeLayout


def test_systematic_identity_top_block():
    rs = ReedSolomon(4, 2)
    import numpy as np

    assert np.array_equal(rs.matrix[:4, :], np.eye(4, dtype=np.uint8))


def test_encode_produces_m_parities():
    rs = ReedSolomon(4, 2)
    data = [bytes([i]) * 16 for i in range(4)]
    parity = rs.encode(data)
    assert len(parity) == 2
    assert all(len(p) == 16 for p in parity)


def test_decode_all_data_present_is_identity():
    rs = ReedSolomon(3, 2)
    data = [b"aaaa", b"bbbb", b"cccc"]
    parity = rs.encode(data)
    out = rs.decode(data + parity)
    assert out == data


def test_recover_from_any_m_erasures():
    rs = ReedSolomon(4, 2)
    data = [bytes(range(i, i + 32)) for i in range(4)]
    shards = data + rs.encode(data)
    for lost in itertools.combinations(range(6), 2):
        damaged = [None if i in lost else shards[i] for i in range(6)]
        assert rs.decode(damaged) == data


def test_too_many_erasures_rejected():
    rs = ReedSolomon(4, 2)
    data = [b"x" * 8] * 4
    shards = data + rs.encode(data)
    damaged = [None, None, None] + shards[3:]
    with pytest.raises(ECError, match="unrecoverable"):
        rs.decode(damaged)


def test_reconstruct_single_parity_shard():
    rs = ReedSolomon(4, 2)
    data = [bytes([i * 3]) * 8 for i in range(4)]
    shards = data + rs.encode(data)
    for idx in range(6):
        damaged = list(shards)
        damaged[idx] = None
        rebuilt = rs.reconstruct_shard(damaged, idx)
        assert rebuilt == shards[idx]


def test_encode_stripe_pads_and_roundtrips():
    rs = ReedSolomon(4, 2)
    payload = b"hello erasure coded world"
    shards = rs.encode_stripe(payload)
    assert len(shards) == 6
    recovered = rs.decode_stripe(shards, len(payload))
    assert recovered == payload


def test_bad_geometry_rejected():
    with pytest.raises(ECError):
        ReedSolomon(0, 2)
    with pytest.raises(ECError):
        ReedSolomon(200, 100)


def test_unequal_shards_rejected():
    rs = ReedSolomon(2, 1)
    with pytest.raises(ECError):
        rs.encode([b"aa", b"a"])


def test_wrong_shard_count_rejected():
    rs = ReedSolomon(2, 1)
    with pytest.raises(ECError):
        rs.encode([b"aa"])
    with pytest.raises(ECError):
        rs.decode([b"aa", b"aa"])


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(2, 6),
    m=st.integers(1, 3),
    payload=st.binary(min_size=1, max_size=256),
    seed=st.integers(0, 2**32 - 1),
)
def test_random_erasure_recovery_property(k, m, payload, seed):
    """Any k surviving shards reconstruct the payload exactly."""
    import random

    rs = ReedSolomon(k, m)
    shards = rs.encode_stripe(payload)
    rng = random.Random(seed)
    lost = set(rng.sample(range(k + m), m))
    damaged = [None if i in lost else shards[i] for i in range(k + m)]
    assert rs.decode_stripe(damaged, len(payload)) == payload


# ------------------------------------------------- exhaustive (4, 2) coverage
#: a payload that is distinct per byte position and not unit-aligned
_PAYLOAD42 = bytes((i * 31 + 7) & 0xFF for i in range(101))


@pytest.mark.parametrize(
    "lost",
    [()]
    + [(i,) for i in range(6)]
    + list(itertools.combinations(range(6), 2)),
    ids=lambda lost: "none" if not lost else "x".join(map(str, lost)),
)
def test_every_erasure_pattern_decodes_bit_exact(lost):
    """All C(6,0)+C(6,1)+C(6,2) erasure patterns at (4, 2) round-trip."""
    rs = ReedSolomon(4, 2)
    shards = rs.encode_stripe(_PAYLOAD42)
    damaged = [None if i in lost else shards[i] for i in range(6)]
    assert rs.decode_stripe(damaged, len(_PAYLOAD42)) == _PAYLOAD42


@pytest.mark.parametrize(
    "survivors",
    list(itertools.combinations(range(6), 4)),
    ids=lambda s: "s" + "".join(map(str, s)),
)
def test_exactly_k_survivors_reconstruct(survivors):
    """Any k=4 of the 6 shards suffice — including parity-only mixes."""
    rs = ReedSolomon(4, 2)
    shards = rs.encode_stripe(_PAYLOAD42)
    damaged = [shards[i] if i in survivors else None for i in range(6)]
    assert rs.decode_stripe(damaged, len(_PAYLOAD42)) == _PAYLOAD42


@pytest.mark.parametrize(
    "survivors",
    list(itertools.combinations(range(6), 3)),
    ids=lambda s: "s" + "".join(map(str, s)),
)
def test_k_minus_one_survivors_fail_cleanly(survivors):
    """Three survivors can never reconstruct: a clean, typed error."""
    rs = ReedSolomon(4, 2)
    shards = rs.encode_stripe(_PAYLOAD42)
    damaged = [shards[i] if i in survivors else None for i in range(6)]
    with pytest.raises(ECError, match="unrecoverable"):
        rs.decode_stripe(damaged, len(_PAYLOAD42))


# ---------------------------------------------------------------- StripeLayout
def test_layout_requires_enough_servers():
    rs = ReedSolomon(4, 2)
    with pytest.raises(ECError):
        StripeLayout(rs, 4096, n_servers=5)


def test_layout_stripe_math():
    rs = ReedSolomon(4, 2)
    lay = StripeLayout(rs, stripe_unit=4096, n_servers=6)
    assert lay.stripe_size == 16384
    assert lay.stripe_of(0) == 0
    assert lay.stripe_of(16383) == 0
    assert lay.stripe_of(16384) == 1
    assert list(lay.stripe_span(8192, 16384)) == [0, 1]
    assert list(lay.stripe_span(0, 0)) == []


def test_layout_rotates_parity_across_servers():
    rs = ReedSolomon(4, 2)
    lay = StripeLayout(rs, stripe_unit=4096, n_servers=6)
    parity_servers = set()
    for s in range(6):
        pl = lay.placement(file_id=1, stripe_index=s)
        for loc in pl.shards:
            if loc.is_parity:
                parity_servers.add(loc.server)
    assert len(parity_servers) == 6  # no parity hotspot


def test_layout_placement_unique_servers_within_stripe():
    rs = ReedSolomon(4, 2)
    lay = StripeLayout(rs, stripe_unit=4096, n_servers=6)
    pl = lay.placement(file_id=7, stripe_index=3)
    servers = [loc.server for loc in pl.shards]
    assert len(set(servers)) == 6


def test_layout_encode_decode_stripe():
    rs = ReedSolomon(4, 2)
    lay = StripeLayout(rs, stripe_unit=8, n_servers=6)
    payload = b"0123456789abcdefGHIJKLMNOPQRSTUV"  # exactly 32 = stripe size
    units = lay.encode_stripe(payload)
    assert len(units) == 6
    units[0] = None
    units[5] = None
    assert lay.decode_stripe(units)[: len(payload)] == payload


def test_update_parity_matches_full_reencode():
    rs = ReedSolomon(4, 2)
    data = [bytes([i + 1]) * 16 for i in range(4)]
    parity = rs.encode(data)
    new_shard = b"\x99" * 16
    updated = rs.update_parity(2, data[2], new_shard, parity)
    data2 = list(data)
    data2[2] = new_shard
    assert updated == rs.encode(data2)


def test_update_parity_identity_when_unchanged():
    rs = ReedSolomon(3, 2)
    data = [b"abcd", b"efgh", b"ijkl"]
    parity = rs.encode(data)
    assert rs.update_parity(0, data[0], data[0], parity) == parity


def test_update_parity_validates_inputs():
    rs = ReedSolomon(3, 2)
    data = [b"ab", b"cd", b"ef"]
    parity = rs.encode(data)
    with pytest.raises(ECError):
        rs.update_parity(3, b"ab", b"xy", parity)
    with pytest.raises(ECError):
        rs.update_parity(0, b"ab", b"xyz", parity)
    with pytest.raises(ECError):
        rs.update_parity(0, b"ab", b"xy", parity[:1])


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(2, 5),
    m=st.integers(1, 3),
    idx=st.integers(0, 4),
    seed=st.integers(0, 2**31),
)
def test_update_parity_property(k, m, idx, seed):
    import random

    idx = idx % k
    rng = random.Random(seed)
    rs = ReedSolomon(k, m)
    data = [bytes(rng.randrange(256) for _ in range(8)) for _ in range(k)]
    parity = rs.encode(data)
    new = bytes(rng.randrange(256) for _ in range(8))
    updated = rs.update_parity(idx, data[idx], new, parity)
    full = rs.encode([new if i == idx else data[i] for i in range(k)])
    assert updated == full
