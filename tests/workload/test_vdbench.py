"""vdbench-style config parser tests."""

import pytest

from repro.workload.vdbench import VdbenchConfig, parse, parse_size


def test_parse_size_units():
    assert parse_size("8k") == 8192
    assert parse_size("1m") == 1 << 20
    assert parse_size("2G") == 2 << 30
    assert parse_size("512") == 512
    assert parse_size("1.5k") == 1536


def test_parse_size_rejects_garbage():
    with pytest.raises(ValueError):
        parse_size("8kb")
    with pytest.raises(ValueError):
        parse_size("lots")


CONFIG = """
# the paper's motivation mix
wd=mix,rdpct=70,xfersize=8k,seekpct=100
wd=seqr,rdpct=100,xfersize=1m,seekpct=0
rd=run_mix,wd=mix,threads=32
rd=run_seq,wd=seqr,threads=16
"""


def test_parse_full_config():
    cfg = parse(CONFIG)
    assert set(cfg.wds) == {"mix", "seqr"}
    assert cfg.wds["mix"].rdpct == 70
    assert cfg.wds["mix"].xfersize == 8192
    assert [rd["name"] for rd in cfg.rds] == ["run_mix", "run_seq"]


def test_jobs_materialise_modes():
    cfg = parse(CONFIG)
    jobs = {j.name: j for j in cfg.jobs()}
    assert jobs["run_mix"].mode == "randrw"
    assert jobs["run_mix"].read_fraction == pytest.approx(0.7)
    assert jobs["run_mix"].nthreads == 32
    assert jobs["run_seq"].mode == "seqread"
    assert jobs["run_seq"].block_size == 1 << 20


def test_pure_read_write_modes():
    cfg = parse(
        "wd=r,rdpct=100,xfersize=4k,seekpct=100\n"
        "wd=w,rdpct=0,xfersize=4k,seekpct=100\n"
        "wd=sw,rdpct=0,xfersize=1m,seekpct=0\n"
        "rd=a,wd=r\nrd=b,wd=w\nrd=c,wd=sw\n"
    )
    modes = [j.mode for j in cfg.jobs()]
    assert modes == ["randread", "randwrite", "seqwrite"]


def test_rd_unknown_wd_rejected():
    with pytest.raises(ValueError):
        parse("rd=x,wd=nope,threads=4")


def test_no_rd_rejected():
    with pytest.raises(ValueError):
        parse("wd=only,rdpct=50")


def test_comments_and_blanks_ignored():
    cfg = parse("\n# comment only\nwd=w,xfersize=8k\nrd=r,wd=w\n")
    assert len(cfg.rds) == 1


def test_jobs_run_against_synthetic_target():
    from repro.sim.core import Environment
    from repro.workload.runner import run_job

    class T:
        def __init__(self, env):
            self.env = env
            self.ops = 0

        def read(self, off, n):
            yield self.env.timeout(1e-6)
            self.ops += 1
            return b"\0" * n

        def write(self, off, data):
            yield self.env.timeout(1e-6)
            self.ops += 1

    cfg = parse(CONFIG)
    for spec in cfg.jobs(ops_per_thread=5):
        env = Environment()
        t = T(env)
        result = run_job(env, spec, lambda tid: t)
        assert t.ops == spec.nthreads * 5
        assert result.iops > 0
