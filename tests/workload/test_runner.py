"""Tests for the workload runner and metrics utilities."""

import pytest

from repro.metrics.stats import LatencyRecorder, ResultTable, fmt_gbps, fmt_iops, fmt_us
from repro.sim.core import Environment
from repro.workload.runner import ClientTarget, JobResult, JobSpec, run_job


class SyntheticTarget:
    """Fixed-latency target recording every op it sees."""

    def __init__(self, env, read_lat=10e-6, write_lat=5e-6):
        self.env = env
        self.read_lat = read_lat
        self.write_lat = write_lat
        self.reads = []
        self.writes = []

    def read(self, offset, length):
        yield self.env.timeout(self.read_lat)
        self.reads.append(offset)
        return b"\0" * length

    def write(self, offset, data):
        yield self.env.timeout(self.write_lat)
        self.writes.append(offset)
        return len(data)


# ---------------------------------------------------------------- LatencyRecorder
def test_latency_recorder_stats():
    lat = LatencyRecorder()
    for v in [1e-6, 2e-6, 3e-6, 4e-6]:
        lat.add(v)
    assert lat.mean == pytest.approx(2.5e-6)
    assert lat.p50 == pytest.approx(2.5e-6)
    assert lat.max == pytest.approx(4e-6)
    assert len(lat) == 4


def test_latency_recorder_empty():
    lat = LatencyRecorder()
    assert lat.mean == 0.0 and lat.p99 == 0.0 and lat.max == 0.0


def test_formatters():
    assert fmt_us(20.6e-6) == "20.6us"
    assert fmt_iops(1_500_000) == "1.50M"
    assert fmt_iops(3_200) == "3.2K"
    assert fmt_iops(42) == "42"
    assert fmt_gbps(15.1e9) == "15.10GB/s"


# ---------------------------------------------------------------- ResultTable
def test_result_table_rendering():
    t = ResultTable("Demo", ["threads", "iops"])
    t.add_row(1, 1000.0)
    t.add_row(32, 32000.0)
    t.note("shape only")
    out = t.render()
    assert "Demo" in out and "threads" in out and "note: shape only" in out
    assert t.column("iops") == [1000.0, 32000.0]


def test_result_table_row_arity_checked():
    t = ResultTable("X", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


# ---------------------------------------------------------------- JobSpec
def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec("bad", "sideways")
    with pytest.raises(ValueError):
        JobSpec("bad", "randread", nthreads=0)


# ---------------------------------------------------------------- run_job
def test_run_job_counts_and_iops():
    env = Environment()
    target = SyntheticTarget(env)
    spec = JobSpec("t", "randwrite", block_size=4096, nthreads=4, ops_per_thread=10)
    result = run_job(env, spec, lambda tid: target)
    assert len(result.lat) == 40
    assert len(target.writes) == 40
    # 4 threads x 10 ops x 5us each, concurrent -> ~50us elapsed
    assert result.elapsed == pytest.approx(50e-6, rel=0.01)
    assert result.iops == pytest.approx(40 / 50e-6, rel=0.01)
    assert result.bandwidth == pytest.approx(result.iops * 4096)


def test_run_job_randread_within_file():
    env = Environment()
    target = SyntheticTarget(env)
    spec = JobSpec(
        "t", "randread", block_size=8192, nthreads=2, ops_per_thread=25, file_size=1 << 20
    )
    run_job(env, spec, lambda tid: target)
    assert len(target.reads) == 50
    assert all(0 <= off < (1 << 20) for off in target.reads)
    assert all(off % 8192 == 0 for off in target.reads)


def test_run_job_sequential_offsets_are_streams():
    env = Environment()
    target = SyntheticTarget(env)
    spec = JobSpec(
        "t", "seqread", block_size=4096, nthreads=1, ops_per_thread=10, file_size=1 << 20
    )
    run_job(env, spec, lambda tid: target)
    assert target.reads == [i * 4096 for i in range(10)]


def test_run_job_seq_more_threads_than_blocks_stays_in_file():
    # Regression: with nthreads > nblocks the old region partitioning gave
    # threads past nblocks a base offset beyond EOF; bases must wrap within
    # the file instead.
    env = Environment()
    target = SyntheticTarget(env)
    spec = JobSpec(
        "t", "seqwrite", block_size=4096, nthreads=8, ops_per_thread=3, file_size=4 * 4096
    )
    run_job(env, spec, lambda tid: target)
    assert len(target.writes) == 24
    assert all(0 <= off < 4 * 4096 for off in target.writes)
    # threads wrap onto the 4 in-file blocks: every base is one of them
    assert {off // 4096 for off in target.writes} <= {0, 1, 2, 3}


def test_run_job_seq_partitioning_unchanged_when_threads_fit():
    # For nthreads <= nblocks the clamp must not move any thread's region.
    env = Environment()
    target = SyntheticTarget(env)
    spec = JobSpec(
        "t", "seqread", block_size=4096, nthreads=4, ops_per_thread=2, file_size=16 * 4096
    )
    run_job(env, spec, lambda tid: target)
    # region = 4 blocks/thread: thread t reads blocks 4t, 4t+1
    assert sorted(target.reads) == sorted(
        (t * 4 + i) * 4096 for t in range(4) for i in range(2)
    )


def test_run_job_mix_fraction():
    env = Environment()
    target = SyntheticTarget(env)
    spec = JobSpec(
        "t",
        "randrw",
        nthreads=4,
        ops_per_thread=100,
        read_fraction=0.7,
        seed=7,
    )
    run_job(env, spec, lambda tid: target)
    frac = len(target.reads) / (len(target.reads) + len(target.writes))
    assert 0.6 < frac < 0.8


def test_run_job_deterministic_across_runs():
    def once():
        env = Environment()
        target = SyntheticTarget(env)
        spec = JobSpec("t", "randrw", nthreads=3, ops_per_thread=20, seed=99)
        result = run_job(env, spec, lambda tid: target)
        return target.reads, target.writes, result.iops

    assert once() == once()


def test_run_job_generator_target_factory():
    env = Environment()

    def factory(tid):
        yield env.timeout(1e-6)  # simulated open()
        return SyntheticTarget(env)

    spec = JobSpec("t", "randwrite", nthreads=2, ops_per_thread=5)
    result = run_job(env, spec, factory)
    assert len(result.lat) == 10


def test_run_job_errors_counted():
    env = Environment()

    class Exploding:
        def write(self, offset, data):
            yield env.timeout(1e-6)
            raise RuntimeError("boom")

        def read(self, offset, length):
            yield env.timeout(1e-6)
            return b""

    spec = JobSpec("t", "randwrite", nthreads=1, ops_per_thread=3)
    result = run_job(env, spec, lambda tid: Exploding())
    assert result.errors == 3


def test_client_target_adapts_ino_interface():
    env = Environment()

    class FakeClient:
        def __init__(self):
            self.calls = []

        def read(self, ino, offset, length):
            yield env.timeout(1e-6)
            self.calls.append(("r", ino, offset))
            return b"\0" * length

        def write(self, ino, offset, data):
            yield env.timeout(1e-6)
            self.calls.append(("w", ino, offset))
            return len(data)

    client = FakeClient()
    spec = JobSpec("t", "randrw", nthreads=1, ops_per_thread=10)
    run_job(env, spec, lambda tid: ClientTarget(client, ino=77))
    assert all(c[1] == 77 for c in client.calls)


def test_cluster_jobspec_validation():
    from repro.workload.runner import ClusterJobSpec

    with pytest.raises(ValueError):
        ClusterJobSpec("bad", "seqread")  # cluster jobs are random-mode only
    with pytest.raises(ValueError):
        ClusterJobSpec("bad", "randrw", nfiles=0)
    with pytest.raises(ValueError):
        ClusterJobSpec("bad", "randrw", zipf_s=-1.0)


def test_zipf_cdf_shape():
    from repro.workload.runner import _zipf_cdf

    cdf = _zipf_cdf(8, 1.1)
    assert len(cdf) == 8 and cdf[-1] == 1.0
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))
    # skew: the most popular file owns more probability mass than uniform
    assert cdf[0] > 1 / 8
    # s=0 degenerates to uniform
    uni = _zipf_cdf(4, 0.0)
    assert uni[0] == pytest.approx(0.25)


def test_run_job_cpu_windows():
    from repro.sim.cpu import CpuPool

    env = Environment()
    pool = CpuPool(env, 4, switch_cost=0)

    class CpuTarget:
        def write(self, offset, data):
            yield from pool.execute(2e-6)

        def read(self, offset, length):
            yield from pool.execute(2e-6)
            return b""

    spec = JobSpec("t", "randwrite", nthreads=2, ops_per_thread=10)
    result = run_job(env, spec, lambda tid: CpuTarget(), host_cpu=pool)
    assert result.host_cores == pytest.approx(2.0, rel=0.1)
