"""End-to-end tests over the assembled testbeds (host -> DPU -> backends)."""

import pytest

from repro.core import (
    build_dpc_system,
    build_ext4_system,
    build_host_dfs_clients,
    build_raw_transport,
)
from repro.host.adapters import FsError, O_DIRECT
from repro.host.vfs import O_CREAT
from repro.params import default_params
from repro.proto.filemsg import Errno, FileOp, FileRequest


# ---------------------------------------------------------------- DPC / KVFS
def test_dpc_kvfs_create_write_read_buffered():
    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/notes.txt", O_CREAT)
        yield from sys.vfs.write(f, 0, b"buffered payload")
        data = yield from sys.vfs.read(f, 0, 16)
        yield from sys.vfs.close(f)
        return data

    assert sys.run_until(app()) == b"buffered payload"


def test_dpc_kvfs_direct_io_roundtrip():
    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/direct.bin", O_CREAT | O_DIRECT)
        payload = bytes(range(256)) * 64  # 16 KiB
        yield from sys.vfs.write(f, 0, payload)
        data = yield from sys.vfs.read(f, 0, len(payload))
        return data

    assert sys.run_until(app()) == bytes(range(256)) * 64


def test_dpc_buffered_write_lands_in_kv_store_after_fsync():
    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/durable", O_CREAT)
        yield from sys.vfs.write(f, 0, b"X" * 8192)
        yield from sys.vfs.fsync(f)
        # Read through the DPU directly (bypassing the host cache).
        data = yield from sys.kvfs.read(f.ino, 0, 8192)
        return data

    assert sys.run_until(app()) == b"X" * 8192


def test_dpc_buffered_then_direct_read_consistent():
    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/mix", O_CREAT)
        yield from sys.vfs.write(f, 0, b"c" * 4096)
        yield from sys.vfs.fsync(f)
        f2 = yield from sys.vfs.open("/kvfs/mix", O_DIRECT)
        return (yield from sys.vfs.read(f2, 0, 4096))

    assert sys.run_until(app()) == b"c" * 4096


def test_dpc_kvfs_namespace_ops_through_vfs():
    sys = build_dpc_system()

    def app():
        yield from sys.vfs.mkdir("/kvfs/etc")
        yield from sys.vfs.mkdir("/kvfs/etc/conf.d")
        f = yield from sys.vfs.open("/kvfs/etc/conf.d/app.cfg", O_CREAT)
        yield from sys.vfs.write(f, 0, b"key=value")
        entries = yield from sys.vfs.readdir("/kvfs/etc/conf.d")
        st = yield from sys.vfs.stat("/kvfs/etc/conf.d/app.cfg")
        yield from sys.vfs.rename("/kvfs/etc/conf.d/app.cfg", "/kvfs/etc/app.cfg")
        moved = yield from sys.vfs.stat("/kvfs/etc/app.cfg")
        yield from sys.vfs.unlink("/kvfs/etc/app.cfg")
        return entries, st.size, moved.ino

    entries, size, moved_ino = sys.run_until(app())
    assert entries == [(b"app.cfg", entries[0][1])]
    assert size == 9
    assert moved_ino == entries[0][1]


def test_dpc_missing_file_raises_enoent():
    sys = build_dpc_system()

    def app():
        try:
            yield from sys.vfs.open("/kvfs/nope")
        except FsError as e:
            return e.errno_code

    assert sys.run_until(app()) == Errno.ENOENT


def test_dpc_stat_reflects_unflushed_buffered_growth():
    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/grow", O_CREAT)
        yield from sys.vfs.write(f, 0, b"g" * 12288)
        st = yield from sys.vfs.stat("/kvfs/grow")
        return st.size

    assert sys.run_until(app()) == 12288


def test_dpc_cache_hit_read_is_fast_and_local():
    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/hot", O_CREAT)
        yield from sys.vfs.write(f, 0, b"h" * 4096)
        snap = sys.link.stats.snapshot()
        t0 = sys.env.now
        yield from sys.vfs.read(f, 0, 4096)
        dt = sys.env.now - t0
        d = sys.link.stats.delta(snap)
        return dt, d.ops()

    dt, pcie_ops = sys.run_until(app())
    assert dt < 5e-6  # microseconds, not a PCIe round trip
    assert pcie_ops == 0  # hits never cross PCIe


def test_dpc_demand_fill_populates_cache():
    sys = build_dpc_system()

    def app():
        f = yield from sys.vfs.open("/kvfs/fill", O_CREAT | O_DIRECT)
        yield from sys.vfs.write(f, 0, b"F" * 8192)
        f2 = yield from sys.vfs.open("/kvfs/fill")  # buffered handle
        yield from sys.vfs.read(f2, 0, 8192)  # miss -> DPU -> async fill
        yield sys.env.timeout(500e-6)
        hits_before = sys.cache_host.stats.read_hits
        yield from sys.vfs.read(f2, 0, 8192)  # now a hit
        return sys.cache_host.stats.read_hits - hits_before

    assert sys.run_until(app()) >= 1


def test_dpc_without_cache_still_correct():
    sys = build_dpc_system(with_cache=False)

    def app():
        f = yield from sys.vfs.open("/kvfs/nocache", O_CREAT)
        yield from sys.vfs.write(f, 0, b"plain")
        return (yield from sys.vfs.read(f, 0, 5))

    assert sys.run_until(app()) == b"plain"


# ---------------------------------------------------------------- DPC / DFS
def test_dpc_dfs_mount_write_read():
    sys = build_dpc_system(with_dfs=True)

    def app():
        f = yield from sys.vfs.open("/dfs/shared.dat", O_CREAT | O_DIRECT)
        payload = b"dfs-data" * 4096  # 32 KiB: a full stripe
        yield from sys.vfs.write(f, 0, payload)
        data = yield from sys.vfs.read(f, 0, len(payload))
        return payload, data

    payload, data = sys.run_until(app())
    assert data == payload


def test_dpc_dfs_data_is_erasure_coded_on_backend():
    sys = build_dpc_system(with_dfs=True)

    def app():
        f = yield from sys.vfs.open("/dfs/ec.dat", O_CREAT | O_DIRECT)
        yield from sys.vfs.write(f, 0, b"E" * sys.dfs_client.layout.stripe_size)
        return f.ino

    ino = sys.run_until(app())
    layout = sys.dfs_client.layout
    pl = layout.placement(ino, 0)
    stored = [sys.dataservers[loc.server].units.get(loc.key) for loc in pl.shards]
    assert all(s is not None for s in stored)
    # Parity really reconstructs the data.
    stored[0] = None
    assert layout.decode_stripe(stored) == b"E" * layout.stripe_size


def test_dpc_dfs_and_kvfs_coexist():
    sys = build_dpc_system(with_dfs=True)

    def app():
        a = yield from sys.vfs.open("/kvfs/local.txt", O_CREAT)
        b = yield from sys.vfs.open("/dfs/remote.txt", O_CREAT | O_DIRECT)
        yield from sys.vfs.write(a, 0, b"standalone")
        yield from sys.vfs.write(b, 0, b"distributed")
        da = yield from sys.vfs.read(a, 0, 10)
        db = yield from sys.vfs.read(b, 0, 11)
        return da, db

    da, db = sys.run_until(app())
    assert da == b"standalone" and db == b"distributed"
    assert sys.dispatch.standalone_ops > 0
    assert sys.dispatch.distributed_ops > 0


# ---------------------------------------------------------------- Ext4 system
def test_ext4_system_roundtrip():
    sys = build_ext4_system()

    def app():
        f = yield from sys.vfs.open("/mnt/local.db", O_CREAT)
        yield from sys.vfs.write(f, 0, b"ext4 payload" * 100)
        return (yield from sys.vfs.read(f, 0, 1200))

    assert sys.run_until(app()) == b"ext4 payload" * 100


def test_ext4_direct_io():
    sys = build_ext4_system()

    def app():
        f = yield from sys.vfs.open("/mnt/direct", O_CREAT | O_DIRECT)
        yield from sys.vfs.write(f, 0, b"D" * 8192)
        return (yield from sys.vfs.read(f, 0, 8192))

    assert sys.run_until(app()) == b"D" * 8192


# ---------------------------------------------------------------- raw transports
@pytest.mark.parametrize("kind", ["nvme-fs", "virtio-fs"])
def test_raw_transport_roundtrip(kind):
    rig = build_raw_transport(kind)

    def app():
        n = yield from rig.adapter.write(1, 0, b"raw" * 1000, 0)
        data = yield from rig.adapter.read(1, 0, 3000, 0)
        return n, data

    n, data = rig.run_until(app())
    assert n == 3000 and data == b"raw" * 1000
    assert rig.virtual.requests == 2


def test_nvmefs_raw_latency_beats_virtio():
    """Figure 6 shape at one thread: nvme-fs round trip < virtio-fs."""

    def one_op(kind):
        rig = build_raw_transport(kind)

        def app():
            t0 = rig.env.now
            yield from rig.adapter.write(1, 0, b"z" * 8192, 0)
            return rig.env.now - t0

        return rig.run_until(app())

    assert one_op("nvme-fs") < one_op("virtio-fs")


# ---------------------------------------------------------------- host DFS testbed
def test_host_dfs_testbed_clients_share_backend():
    tb = build_host_dfs_clients()

    def app():
        attr = yield from tb.opt_client.create(0, b"common")
        yield from tb.opt_client.write(attr.ino, 0, b"via opt")
        yield from tb.opt_client.flush_metadata()
        found = yield from tb.std_client.lookup(0, b"common")
        data = yield from tb.std_client.read(found.ino, 0, 7)
        return data

    assert tb.run_until(app()) == b"via opt"
