"""Multi-NVMe data plane: bit-identity golden + local-plane end-to-end.

``GOLDEN_FIG7_EXT4`` was captured from the **pre-striping** ext4 testbed at
the default seed (42), before ``build_nvme_array`` replaced the inline
``NvmeSsd`` construction.  With ``nvme_devices_per_node=1`` (the default)
the array builder must reproduce the old wiring byte for byte: same seeded
run, same registry snapshot, same signature.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.testbeds import build_dpc_system, build_ext4_system
from repro.dpu.striping import StripedNvme
from repro.experiments.common import measure_threads
from repro.host.adapters import FsError, O_DIRECT
from repro.host.vfs import O_CREAT
from repro.params import default_params

BLOCK = 8192
FILE_SIZE = 4 << 20

#: registry-snapshot signature of the pre-striping single-SSD ext4 testbed
#: at seed 42 (captured before this refactor; see module docstring)
GOLDEN_FIG7_EXT4 = "3e75f40bb26bc9007995590ce25ba983310b8251e65c1678f6457650e416b61c"


def _signature(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _rand_off(tid: int, j: int, span: int) -> int:
    h = (tid * 0x9E3779B1 + j * 0x85EBCA77) & 0xFFFFFFFF
    return (h % (span // BLOCK)) * BLOCK


def probe_fig7_ext4(params=None) -> str:
    """Fig7/Table2-style ext4 run: direct random 8K mix + 1 MiB streams."""
    sys_ = build_ext4_system(params=params)

    def prep():
        f = yield from sys_.vfs.open("/mnt/bigfile", O_CREAT | O_DIRECT)
        blob = b"\x42" * (1 << 20)
        for off in range(0, FILE_SIZE, 1 << 20):
            yield from sys_.vfs.write(f, off, blob)
        return f

    f = sys_.run_until(prep())
    block = b"\x5a" * BLOCK

    def op(tid, j):
        off = _rand_off(tid, j, FILE_SIZE)
        if (tid + j) % 2:
            yield from sys_.vfs.write(f, off, block)
        else:
            yield from sys_.vfs.read(f, off, BLOCK)

    measure_threads(sys_.env, 8, 6, op, host_cpu=sys_.host_cpu)

    def stream():
        blob = b"\x7e" * (1 << 20)
        yield from sys_.vfs.write(f, 0, blob)
        yield from sys_.vfs.read(f, 0, 1 << 20)
        yield from sys_.vfs.fsync(f)

    sys_.run_until(stream())
    return _signature(sys_.registry.snapshot())


# ---------------------------------------------------------------------------
# Bit-identity: nvme_devices_per_node=1 must match the pre-striping golden
# ---------------------------------------------------------------------------


def test_single_device_matches_pre_striping_golden():
    assert probe_fig7_ext4() == GOLDEN_FIG7_EXT4


def test_single_device_golden_is_explicit_about_default():
    p = default_params()
    assert p.nvme_devices_per_node == 1
    assert probe_fig7_ext4(params=p.with_overrides(nvme_devices_per_node=1)) == (
        GOLDEN_FIG7_EXT4
    )


def test_multi_device_ext4_changes_timing_but_stays_deterministic():
    p = default_params().with_overrides(nvme_devices_per_node=4)
    sig = probe_fig7_ext4(params=p)
    assert sig != GOLDEN_FIG7_EXT4  # striping genuinely changes the run
    assert sig == probe_fig7_ext4(params=p)  # ...deterministically


# ---------------------------------------------------------------------------
# DPU-local data plane over the striped array
# ---------------------------------------------------------------------------


def _local_roundtrip(system, path="/local/f", size=1 << 20):
    blob = bytes((i * 131 + 17) % 256 for i in range(size))

    def scenario():
        f = yield from system.vfs.open(path, O_CREAT | O_DIRECT)
        yield from system.vfs.write(f, 0, blob)
        data = yield from system.vfs.read(f, 0, size)
        attr = yield from system.vfs.stat(path)
        yield from system.vfs.fsync(f)
        yield from system.vfs.close(f)
        return bytes(data), attr

    data, attr = system.run_until(scenario())
    assert data == blob
    assert attr.size == size


def test_local_plane_single_device_end_to_end():
    sys_ = build_dpc_system(with_local_nvme=True)
    _local_roundtrip(sys_)
    assert sys_.dispatch.local_ops > 0
    assert sys_.nvme is not None and not isinstance(sys_.nvme, StripedNvme)
    # the existing mounts still work alongside
    assert sys_.dispatch.standalone_ops >= 0


def test_local_plane_striped_end_to_end():
    p = default_params().with_overrides(nvme_devices_per_node=4)
    sys_ = build_dpc_system(params=p, with_local_nvme=True)
    _local_roundtrip(sys_)
    assert isinstance(sys_.nvme, StripedNvme)
    # the 1 MiB stream fanned out across every array member
    assert all(d.bytes_written > 0 for d in sys_.nvme.devices)
    snap = sys_.registry.snapshot()
    assert snap["ssd.n_devices"] == 4
    assert snap["dispatch.local_ops"] > 0
    for d in sys_.nvme.devices:
        assert f"ssd.{d.name}.busy_seconds" in snap
        assert f"ssd.{d.name}.qd_peak" in snap


def test_local_plane_metadata_ops_and_errors():
    sys_ = build_dpc_system(with_local_nvme=True)

    def scenario():
        yield from sys_.vfs.mkdir("/local/d")
        f = yield from sys_.vfs.open("/local/d/x", O_CREAT)
        yield from sys_.vfs.write(f, 0, b"hello")
        yield from sys_.vfs.close(f)
        names = yield from sys_.vfs.readdir("/local/d")
        yield from sys_.vfs.unlink("/local/d/x")
        try:
            yield from sys_.vfs.open("/local/d/x", 0)
        except FsError as e:
            missing = e.errno_code
        else:
            missing = None
        return names, missing

    names, missing = sys_.run_until(scenario())
    assert b"x" in [n for n, _ in names] or "x" in [
        n.decode() if isinstance(n, bytes) else n for n, _ in names
    ]
    assert missing is not None


def test_registry_without_local_plane_has_no_ssd_keys():
    sys_ = build_dpc_system()
    snap = sys_.registry.snapshot()
    assert not any(k.startswith("ssd.") for k in snap)
    assert "dispatch.local_ops" not in snap


def test_local_plane_multi_node_cluster():
    from repro.core.topology import build_cluster

    p = default_params().with_overrides(nvme_devices_per_node=2)
    cluster = build_cluster(n_hosts=2, params=p, with_local_nvme=True)
    for node in cluster.nodes:
        assert isinstance(node.dpu.nvme, StripedNvme)

    a, b = cluster.nodes
    blob_a, blob_b = b"\xaa" * BLOCK, b"\xbb" * BLOCK

    def scenario():
        fa = yield from a.vfs.open("/local/f", O_CREAT | O_DIRECT)
        fb = yield from b.vfs.open("/local/f", O_CREAT | O_DIRECT)
        yield from a.vfs.write(fa, 0, blob_a)
        yield from b.vfs.write(fb, 0, blob_b)
        da = yield from a.vfs.read(fa, 0, BLOCK)
        db = yield from b.vfs.read(fb, 0, BLOCK)
        return bytes(da), bytes(db)

    da, db = cluster.run_until(scenario())
    # node-local planes are truly per-node: no cross-talk
    assert da == blob_a and db == blob_b
    assert a.dpu.nvme is not b.dpu.nvme


if __name__ == "__main__":
    print("fig7-ext4", probe_fig7_ext4())
