"""Cluster topology refactor: equivalence, determinism, and coherence.

The golden signatures below were captured from the **pre-refactor**
``build_dpc_system`` at the default seed (42).  The topology refactor
(HostNode/DpuNode/Cluster) must keep the n_hosts=1 wiring bit-identical:
the same seeded workloads must produce byte-for-byte the same registry
snapshots, hence the same signatures.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from types import SimpleNamespace

import pytest

from repro.core.testbeds import build_dpc_system
from repro.core.topology import build_cluster, node_endpoint
from repro.experiments.common import measure_threads
from repro.experiments.fig2_dma import count_dmas
from repro.host.adapters import O_DIRECT
from repro.host.vfs import O_CREAT
from repro.params import default_params

BLOCK = 8192
PROBE_FILE_SIZE = 4 << 20

#: registry-snapshot signatures captured from the pre-refactor
#: ``build_dpc_system`` at seed 42 — the topology layer must reproduce them
GOLDEN_FIG2 = "5aa342586e7cc34e74bddaf3b93a005ffe5a0ac3bfad2e7897468da5d1fc24d2"
GOLDEN_FIG8 = "948bfede2af3318a974b0b852a13fe389693def82fbcd6158a3aad20a8fabad2"
GOLDEN_FIG9 = "ced0984b4490cca75dc53ff1ba8ad01a9b74254e9a142e8474cd73186b621836"


def _signature(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _rand_off(tid: int, j: int, span: int) -> int:
    h = (tid * 0x9E3779B1 + j * 0x85EBCA77) & 0xFFFFFFFF
    return (h % (span // BLOCK)) * BLOCK


def probe_fig2() -> str:
    """Fig2-style DMA counting over both raw transports."""
    out = {}
    for kind in ("nvme-fs", "virtio-fs"):
        for rw in ("write", "read"):
            out[f"{kind}:{rw}"] = count_dmas(kind, rw, BLOCK)
    return _signature(out)


def probe_fig8(system=None) -> str:
    """Fig8-style buffered random writes through the hybrid cache."""
    sys_ = system if system is not None else build_dpc_system()

    def prep():
        f = yield from sys_.vfs.open("/kvfs/f", O_CREAT | O_DIRECT)
        blob = b"\x33" * (1 << 20)
        for off in range(0, PROBE_FILE_SIZE, 1 << 20):
            yield from sys_.vfs.write(f, off, blob)
        f2 = yield from sys_.vfs.open("/kvfs/f", 0)
        return f2

    f = sys_.run_until(prep())
    block = b"\x5a" * BLOCK

    def op(tid, j):
        yield from sys_.vfs.write(f, _rand_off(tid, j, PROBE_FILE_SIZE), block)

    measure_threads(sys_.env, 8, 6, op, host_cpu=sys_.host_cpu)

    def fsync():
        yield from sys_.vfs.fsync(f)

    sys_.run_until(fsync())
    return _signature(sys_.registry.snapshot())


def probe_fig9(system=None) -> str:
    """Fig9-style direct random writes through the offloaded DFS client."""
    sys_ = system if system is not None else build_dpc_system(with_dfs=True)

    def prep():
        f = yield from sys_.vfs.open("/dfs/big", O_CREAT | O_DIRECT)
        blob = b"\x11" * (1 << 20)
        for off in range(0, PROBE_FILE_SIZE, 1 << 20):
            yield from sys_.vfs.write(f, off, blob)
        return f

    f = sys_.run_until(prep())
    block = b"\x5a" * BLOCK

    def op(tid, j):
        yield from sys_.vfs.write(f, _rand_off(tid, j, PROBE_FILE_SIZE), block)

    measure_threads(sys_.env, 4, 5, op, host_cpu=sys_.host_cpu)
    return _signature(sys_.registry.snapshot())


# ---------------------------------------------------------------------------
# Golden equivalence: the refactored wiring must be bit-identical
# ---------------------------------------------------------------------------


def test_fig2_signature_matches_pre_refactor_golden():
    assert probe_fig2() == GOLDEN_FIG2


def test_fig8_signature_matches_pre_refactor_golden():
    assert probe_fig8() == GOLDEN_FIG8


def test_fig9_signature_matches_pre_refactor_golden():
    assert probe_fig9() == GOLDEN_FIG9


def _cluster_node0_system(**kw) -> SimpleNamespace:
    """Adapt a 1-host Cluster to the probe interface (node 0's view)."""
    cluster = build_cluster(n_hosts=1, **kw)
    node = cluster.node(0)
    return SimpleNamespace(
        env=cluster.env,
        vfs=node.vfs,
        host_cpu=node.host_cpu,
        registry=node.registry,
        run_until=cluster.run_until,
    )


def test_cluster_of_one_matches_fig8_golden():
    assert probe_fig8(system=_cluster_node0_system()) == GOLDEN_FIG8


def test_cluster_of_one_matches_fig9_golden():
    assert probe_fig9(system=_cluster_node0_system(with_dfs=True)) == GOLDEN_FIG9


# ---------------------------------------------------------------------------
# Multi-node determinism
# ---------------------------------------------------------------------------


def _run_four_hosts() -> str:
    from repro.workload import ClusterJobSpec, run_cluster_job

    cluster = build_cluster(n_hosts=4)
    spec = ClusterJobSpec(
        name="det",
        mode="randrw",
        mount="/kvfs",
        nthreads=2,
        ops_per_thread=8,
        nfiles=4,
        file_size=256 * 1024,
    )
    res = run_cluster_job(cluster, spec)
    assert res.errors == 0
    return _signature({"snap": cluster.snapshot(), "iops": res.iops,
                       "per_node": res.per_node_iops})


def test_four_hosts_bit_identical_across_runs():
    assert _run_four_hosts() == _run_four_hosts()


def test_cluster_endpoints_and_snapshot_are_per_node():
    cluster = build_cluster(n_hosts=3)
    assert [n.endpoint for n in cluster.nodes] == ["dpc", "dpc1", "dpc2"]
    snap = cluster.snapshot()
    assert sorted(snap) == ["dpc", "dpc1", "dpc2"]
    # every per-node registry carries its own CPU pools
    for ep, node in zip(snap, cluster.nodes):
        assert any(k.startswith("cpu.") for k in snap[ep])
        assert node.registry is not cluster.nodes[0].registry or ep == "dpc"


# ---------------------------------------------------------------------------
# Cross-client coherence: delegation recall invalidates the hybrid cache
# ---------------------------------------------------------------------------


def test_recall_invalidates_remote_hybrid_cache():
    params = dataclasses.replace(default_params(), deleg_lease=200e-6)
    cluster = build_cluster(n_hosts=2, params=params, with_dfs=True)
    env = cluster.env
    a, b = cluster.nodes[0], cluster.nodes[1]
    old, new = b"\xaa" * BLOCK, b"\xbb" * BLOCK
    out = {}

    def scenario():
        # B creates the shared file and publishes it to the MDS.
        f = yield from b.vfs.open("/dfs/shared", O_CREAT | O_DIRECT)
        ino = f.ino
        yield from b.vfs.write(f, 0, old)
        yield from b.vfs.close(f)
        yield from b.dpu.dfs_client.flush_metadata()
        # B takes the delegation and caches OLD through a buffered read.
        assert (yield from b.dpu.dfs_client.acquire_file_delegation(ino))
        fb = yield from b.vfs.open("/dfs/shared", 0)
        d0 = yield from b.vfs.read(fb, 0, BLOCK)
        out["b_cached_old"] = bytes(d0) == old
        yield env.timeout(1e-3)  # let B's lease expire
        # A contends: the MDS recalls B's delegation, which must flush and
        # drop B's cached pages before the grant.
        assert (yield from a.dpu.dfs_client.acquire_file_delegation(ino))
        fa = yield from a.vfs.open("/dfs/shared", O_DIRECT)
        yield from a.vfs.write(fa, 0, new)
        yield from a.vfs.close(fa)
        d1 = yield from b.vfs.read(fb, 0, BLOCK)
        out["b_sees_new"] = bytes(d1) == new
        yield from b.vfs.close(fb)

    cluster.run_until(scenario())
    assert out["b_cached_old"], "B must serve OLD from its delegation-era cache"
    assert out["b_sees_new"], "after the recall B must read A's new data"
    assert b.dpu.dfs_client.recalls_served == 1
    assert b.dpu.cache_ctrl.invalidations > 0
    assert sum(m.recalls for m in cluster.mds.servers) >= 1


# ---------------------------------------------------------------------------
# Endpoint naming, registration versioning, fabric collisions
# ---------------------------------------------------------------------------


def test_node_endpoint_naming():
    assert node_endpoint("dpc", 0) == "dpc"
    assert node_endpoint("dpc", 1) == "dpc1"
    assert node_endpoint("host", 7) == "host7"
    with pytest.raises(ValueError):
        node_endpoint("dpc", -1)


def test_fabric_attach_collision_raises():
    cluster = build_cluster(n_hosts=1)
    with pytest.raises(ValueError):
        cluster.fabric.attach("dpc", 1e9)


def test_obsv_register_versions_duplicate_names():
    from repro.obsv import ObsvContext

    ctx = ObsvContext(enabled=True)
    assert ctx.register("dpc", None, {"a": 1}) == "dpc"
    assert ctx.register("dpc", None, {"a": 2}) == "dpc@2"
    assert ctx.register("dpc", None, {"a": 3}) == "dpc@3"
    assert ctx.register("dpc1", None, {"a": 4}) == "dpc1"
    names = [n for n, _, _ in ctx.systems]
    assert names == ["dpc", "dpc@2", "dpc@3", "dpc1"]
    # disabled contexts record nothing but still echo the name
    off = ObsvContext(enabled=False)
    assert off.register("dpc", None, None) == "dpc"
    assert off.systems == []


if __name__ == "__main__":
    print("fig2", probe_fig2())
    print("fig8", probe_fig8())
    print("fig9", probe_fig9())
