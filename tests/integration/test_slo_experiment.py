"""SLO burn-rate experiment + extended report CLI coverage.

The fault-ablation schedules drive the whole stack, so these tests double
as end-to-end checks that the sketch hub, SLO engine, and bottleneck
attribution cooperate on a real workload.
"""

from repro.experiments.slo import DEFAULT_SPEC, LAYERS, run_variant, write_bench
from repro.obsv import disable_tracing, get_context
from repro.obsv.report import layer_breakdown, run_experiment


def test_healthy_variant_stays_within_budget():
    r = run_variant("healthy")
    assert r["availability"] == 1.0
    assert r["breaches"] == 0
    assert r["bottleneck"] == "none"
    assert r["budget_remaining"] == 1.0
    assert r["observations"] > 0 and r["bad"] == 0


def test_degraded_variant_burns_and_names_the_dataserver():
    r = run_variant("degraded")
    assert r["breaches"] > 0
    assert r["max_burn_rate"] > 2.0
    assert r["budget_remaining"] < 1.0
    # reconstruction reads the survivor units over ds.rpc: the data-server
    # layer grows fastest across the breaching windows
    assert r["bottleneck"] == "dataserver"


def test_sketch_p99_tracks_exact_p99_per_variant():
    for variant in ("healthy", "degraded"):
        r = run_variant(variant)
        assert abs(r["sketch_p99_us"] - r["p99_us"]) / r["p99_us"] <= 0.05


def test_slo_runs_are_deterministic():
    assert run_variant("degraded") == run_variant("degraded")


def test_layers_cover_the_spec_endpoint():
    # the attributed layers telescope out of the client read path
    assert DEFAULT_SPEC.endpoint == "client.read"
    includes = {n for inc, _ in LAYERS.values() for n in inc}
    assert "ds.rpc" in includes and "net.send" in includes


def test_write_bench_emits_per_variant_metrics(tmp_path):
    points = [run_variant("healthy")]
    out = write_bench(points, path=tmp_path / "BENCH_slo.json")
    import json

    data = json.loads(out.read_text())
    assert data["schema"] == 2
    m = data["metrics"]
    assert m["healthy/breaches"] == 0
    assert "healthy/max_burn_rate" in m
    assert "healthy/bottleneck" in m


def test_report_cli_covers_new_experiments():
    # each new --experiment choice must build traced systems whose client
    # ops roll up into the layer breakdown
    for exp in ("scaleout", "kvflash", "multidev"):
        try:
            run_experiment(exp, None, threads=2, ops=2)
            ctx = get_context()
            assert ctx.systems, exp
            tracers = ctx.tracers()
            assert tracers, exp
            ops = sum(layer_breakdown(t)["ops"] for t in tracers)
            assert ops > 0, exp
        finally:
            disable_tracing()
