"""Full-system stress and determinism tests."""

import pytest

from repro.core import build_dpc_system, build_raw_transport
from repro.host.adapters import O_DIRECT
from repro.host.vfs import O_CREAT
from repro.proto.filemsg import FileOp, FileRequest
from repro.workload.runner import JobSpec, VfsFileTarget, run_job


def test_nvme_queue_wraparound_and_cid_reuse():
    """Far more commands than the queue depth through a single queue."""
    rig = build_raw_transport("nvme-fs", num_queues=1)
    depth = rig.params.nvme_queue_depth
    total = depth * 3 + 7

    def app():
        for i in range(total):
            n = yield from rig.adapter.write(1, (i % 64) * 4096, b"w" * 4096, 0)
            assert n == 4096
        return rig.virtual.requests

    assert rig.run_until(app()) == total
    qp = rig.adapter.ini.queues[0]
    assert qp.submitted == total and qp.completed == total
    assert not qp.pending


def test_concurrent_mixed_workload_stress():
    """64 threads of mixed creates/writes/reads/readdirs; no losses."""
    sys = build_dpc_system()
    errors = []

    def worker(tid):
        try:
            yield from sys.vfs.mkdir(f"/kvfs/w{tid}")
            handles = []
            for j in range(4):
                f = yield from sys.vfs.open(f"/kvfs/w{tid}/f{j}", O_CREAT)
                yield from sys.vfs.write(f, 0, bytes([tid]) * (500 + 3000 * j))
                handles.append((f, 500 + 3000 * j))
            for f, size in handles:
                data = yield from sys.vfs.read(f, 0, size)
                assert data == bytes([tid]) * size, f"corruption in t{tid}"
            listing = yield from sys.vfs.readdir(f"/kvfs/w{tid}")
            assert len(listing) == 4
            yield from sys.vfs.unlink(f"/kvfs/w{tid}/f0")
            listing = yield from sys.vfs.readdir(f"/kvfs/w{tid}")
            assert len(listing) == 3
        except AssertionError as e:
            errors.append(str(e))

    procs = [sys.env.process(worker(t)) for t in range(64)]
    sys.env.run(until=sys.env.all_of(procs))
    assert errors == []
    root = sys.run_until(sys.vfs.readdir("/kvfs"))
    assert len(root) == 64


def test_full_system_run_is_deterministic():
    """Two identical runs produce bit-identical metrics."""

    def once():
        sys = build_dpc_system()

        def prep():
            f = yield from sys.vfs.open("/kvfs/det", O_CREAT | O_DIRECT)
            yield from sys.vfs.write(f, 0, b"D" * (1 << 20))
            return f

        handle = sys.run_until(prep())
        spec = JobSpec("det", "randrw", block_size=8192, nthreads=8, ops_per_thread=15,
                       file_size=1 << 20, seed=1234)
        result = run_job(sys.env, spec, lambda tid: VfsFileTarget(sys.vfs, handle),
                         host_cpu=sys.host_cpu, dpu_cpu=sys.dpu_cpu)
        return (
            result.iops,
            result.lat.mean,
            result.host_cores,
            result.dpu_cores,
            sys.link.stats.reads,
            sys.link.stats.writes,
            sys.kv_cluster.total_ops(),
            sys.env.now,
        )

    assert once() == once()


def test_interleaved_direct_and_buffered_handles_consistent():
    """Two handles to the same file (direct + buffered) stay coherent
    through fsync barriers."""
    sys = build_dpc_system()

    def app():
        fb = yield from sys.vfs.open("/kvfs/shared", O_CREAT)
        fd = yield from sys.vfs.open("/kvfs/shared", O_DIRECT)
        yield from sys.vfs.write(fb, 0, b"B" * 4096)  # buffered
        yield from sys.vfs.fsync(fb)
        via_direct = yield from sys.vfs.read(fd, 0, 4096)
        yield from sys.vfs.write(fd, 4096, b"D" * 4096)  # direct
        via_buffered = yield from sys.vfs.read(fb, 4096, 4096)
        return via_direct, via_buffered

    via_direct, via_buffered = sys.run_until(app())
    assert via_direct == b"B" * 4096
    assert via_buffered == b"D" * 4096


def test_many_files_roundtrip_through_lsm_compaction():
    """Enough churn to force memtable flushes + compactions underneath."""
    from repro.params import default_params

    sys = build_dpc_system(default_params().with_overrides(kv_memtable_bytes=64 * 1024))

    def app():
        payloads = {}
        for i in range(60):
            f = yield from sys.vfs.open(f"/kvfs/churn{i}", O_CREAT | O_DIRECT)
            data = bytes([i]) * (4096 + i * 97)
            yield from sys.vfs.write(f, 0, data)
            payloads[i] = (f, data)
        # Overwrite half of them (new LSM versions).
        for i in range(0, 60, 2):
            f, _ = payloads[i]
            data = bytes([255 - i]) * 5000
            yield from sys.vfs.write(f, 0, data)
            payloads[i] = (f, data + payloads[i][1][5000:] if len(payloads[i][1]) > 5000 else data)
        ok = 0
        for i, (f, data) in payloads.items():
            got = yield from sys.vfs.read(f, 0, len(data))
            if got == data:
                ok += 1
        return ok

    assert sys.run_until(app()) == 60
    # The engines actually flushed/compacted during this run.
    flushes = sum(s.engine.stats.flushes for s in sys.kv_cluster.shards)
    assert flushes >= 1
