"""Tests for the PCIe link, CPU pools, NVMe device model and fabric."""

import pytest

from repro.sim.core import Environment
from repro.sim.cpu import CpuPool
from repro.sim.memory import MemoryArena
from repro.sim.network import Fabric
from repro.sim.nvme_device import BLOCK, NvmeSsd
from repro.sim.pcie import PcieLink


# ---------------------------------------------------------------- PCIe
def test_dma_read_returns_host_bytes_and_costs_latency():
    env = Environment()
    mem = MemoryArena(4096)
    mem.write(128, b"abcdef")
    link = PcieLink(env, mem, latency=1e-6, bandwidth=1e9)
    out = {}

    def dpu():
        data = yield from link.dma_read(128, 6, tag="test")
        out["data"] = data
        out["t"] = env.now

    env.process(dpu())
    env.run()
    assert out["data"] == b"abcdef"
    assert out["t"] >= 1e-6
    assert link.stats.reads == 1
    assert link.stats.bytes_read == 6
    assert link.stats.by_tag["test"] == 1


def test_dma_write_lands_in_host_memory():
    env = Environment()
    mem = MemoryArena(4096)
    link = PcieLink(env, mem)

    def dpu():
        yield from link.dma_write(64, b"payload")

    env.process(dpu())
    env.run()
    assert mem.read(64, 7) == b"payload"
    assert link.stats.writes == 1


def test_pcie_atomic_cas_roundtrip():
    env = Environment()
    mem = MemoryArena(64)
    mem.write_u32(0, 7)
    link = PcieLink(env, mem)
    results = []

    def dpu():
        ok = yield from link.atomic_cas_u32(0, 7, 99)
        results.append(ok)
        ok = yield from link.atomic_cas_u32(0, 7, 100)
        results.append(ok)

    env.process(dpu())
    env.run()
    assert results == [True, False]
    assert mem.read_u32(0) == 99
    assert link.stats.atomics == 2


def test_pcie_atomic_faa():
    env = Environment()
    mem = MemoryArena(64)
    link = PcieLink(env, mem)

    def dpu():
        old = yield from link.atomic_faa_u32(0, 5)
        assert old == 0
        old = yield from link.atomic_faa_u32(0, 5)
        assert old == 5

    env.process(dpu())
    env.run()
    assert mem.read_u32(0) == 10


def test_large_transfer_dominated_by_bandwidth():
    env = Environment()
    mem = MemoryArena(2 * 1024 * 1024)
    link = PcieLink(env, mem, latency=1e-6, bandwidth=1e9)  # 1 GB/s
    times = {}

    def dpu():
        yield from link.dma_read(0, 1_000_000, tag="big")
        times["t"] = env.now

    env.process(dpu())
    env.run()
    assert times["t"] == pytest.approx(1e-3 + 1e-6, rel=0.01)


def test_dma_stats_delta():
    env = Environment()
    mem = MemoryArena(4096)
    link = PcieLink(env, mem)

    def dpu():
        yield from link.dma_read(0, 8, tag="a")
        snap = link.stats.snapshot()
        yield from link.dma_write(0, b"x" * 8, tag="b")
        yield from link.atomic_faa_u32(16, 1, tag="b")
        d = link.stats.delta(snap)
        assert d.reads == 0 and d.writes == 1 and d.atomics == 1
        assert d.by_tag == {"b": 2}

    env.process(dpu())
    env.run()


# ---------------------------------------------------------------- CpuPool
def test_cpu_pool_accounts_busy_time():
    env = Environment()
    pool = CpuPool(env, cores=2, switch_cost=0.0)

    def worker():
        yield from pool.execute(1.0, tag="io")

    for _ in range(4):
        env.process(worker())
    env.run()
    assert pool.busy_seconds == pytest.approx(4.0)
    assert pool.busy_by_tag["io"] == pytest.approx(4.0)
    assert env.now == pytest.approx(2.0)  # 4 units of work on 2 cores


def test_cpu_pool_perf_scales_work():
    env = Environment()
    slow = CpuPool(env, cores=1, perf=0.5, switch_cost=0.0)

    def worker():
        yield from slow.execute(1.0)

    env.process(worker())
    env.run()
    assert env.now == pytest.approx(2.0)  # half-speed core


def test_cpu_pool_oversubscription_penalty():
    env = Environment()
    pool = CpuPool(env, cores=1, switch_cost=0.1, max_penalty_waiters=8)

    def worker():
        yield from pool.execute(1.0)

    for _ in range(3):
        env.process(worker())
    env.run()
    # With queueing, total time exceeds the no-switch 3.0 seconds.
    assert env.now > 3.0


def test_cpu_window_accounting():
    env = Environment()
    pool = CpuPool(env, cores=4, switch_cost=0.0)

    def worker():
        yield env.timeout(1.0)
        pool.begin_window()
        yield from pool.execute(2.0)

    env.process(worker())
    env.run()
    assert pool.window_cores_used() == pytest.approx(1.0)
    assert pool.window_usage_percent() == pytest.approx(25.0)


def test_cpu_rejects_negative_work():
    env = Environment()
    pool = CpuPool(env, cores=1)

    def worker():
        yield from pool.execute(-1)

    env.process(worker())
    with pytest.raises(ValueError):
        env.run()


# ---------------------------------------------------------------- NvmeSsd
def test_ssd_write_read_roundtrip():
    env = Environment()
    ssd = NvmeSsd(env)
    data = bytes(range(256)) * 16  # 4096 bytes
    out = {}

    def proc():
        yield from ssd.write_blocks(10, data)
        got = yield from ssd.read_blocks(10, 1)
        out["data"] = got

    env.process(proc())
    env.run()
    assert out["data"] == data


def test_ssd_unwritten_blocks_read_zero():
    env = Environment()
    ssd = NvmeSsd(env)
    out = {}

    def proc():
        got = yield from ssd.read_blocks(5, 2)
        out["data"] = got

    env.process(proc())
    env.run()
    assert out["data"] == bytes(2 * BLOCK)


def test_ssd_read_slower_than_write():
    env = Environment()
    ssd = NvmeSsd(env, read_latency=88e-6, write_latency=14e-6)
    t = {}

    def proc():
        t0 = env.now
        yield from ssd.write_blocks(0, bytes(BLOCK))
        t["w"] = env.now - t0
        t1 = env.now
        yield from ssd.read_blocks(0, 1)
        t["r"] = env.now - t1

    env.process(proc())
    env.run()
    assert t["r"] > t["w"]


def test_ssd_channel_queueing_raises_latency():
    env = Environment()
    ssd = NvmeSsd(env, read_latency=100e-6, channels=2, max_iops=1e9, bandwidth=1e12)
    lats = []

    def reader():
        t0 = env.now
        yield from ssd.read_blocks(0, 1)
        lats.append(env.now - t0)

    for _ in range(6):
        env.process(reader())
    env.run()
    # First two finish at ~100us; the last pair waits behind two rounds.
    assert min(lats) == pytest.approx(100e-6, rel=0.05)
    assert max(lats) >= 280e-6


def test_ssd_misaligned_write_rejected():
    env = Environment()
    ssd = NvmeSsd(env)

    def proc():
        yield from ssd.write_blocks(0, b"short")

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_ssd_out_of_range_rejected():
    env = Environment()
    ssd = NvmeSsd(env, capacity_blocks=4)

    def proc():
        yield from ssd.read_blocks(3, 2)

    env.process(proc())
    with pytest.raises(IndexError):
        env.run()


# ---------------------------------------------------------------- Fabric
def test_fabric_rpc_roundtrip():
    env = Environment()
    fabric = Fabric(env, latency=5e-6)
    fabric.attach("client")
    server_ep = fabric.attach("server")
    out = {}

    def server():
        while True:
            msg = yield server_ep.inbox.get()
            yield from fabric.reply(msg, ("pong", msg.payload), size=64)

    def client():
        resp = yield from fabric.rpc("client", "server", "ping", req_size=64)
        out["resp"] = resp
        out["t"] = env.now

    env.process(server())
    p = env.process(client())
    env.run(until=p)
    assert out["resp"] == ("pong", "ping")
    # At least two fabric latencies (request + response).
    assert out["t"] >= 10e-6


def test_fabric_send_one_way():
    env = Environment()
    fabric = Fabric(env, latency=1e-6)
    fabric.attach("a")
    b = fabric.attach("b")
    got = {}

    def sender():
        yield from fabric.send("a", "b", {"k": 1}, size=128)

    def receiver():
        msg = yield b.inbox.get()
        got["payload"] = msg.payload
        got["src"] = msg.src

    env.process(sender())
    p = env.process(receiver())
    env.run(until=p)
    assert got == {"payload": {"k": 1}, "src": "a"}


def test_fabric_duplicate_attach_rejected():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("x")
    with pytest.raises(ValueError):
        fabric.attach("x")


def test_fabric_bandwidth_serialises_large_messages():
    env = Environment()
    fabric = Fabric(env, latency=0.0, default_bandwidth=1000.0)
    fabric.attach("a")
    b = fabric.attach("b")
    arrivals = []

    def sender(i):
        yield from fabric.send("a", "b", i, size=1000)

    def receiver():
        for _ in range(2):
            msg = yield b.inbox.get()
            arrivals.append((msg.payload, env.now))

    env.process(sender(0))
    env.process(sender(1))
    p = env.process(receiver())
    env.run(until=p)
    # 2 x 1000 bytes over a 1000 B/s egress: second arrives ~1s later.
    assert arrivals[1][1] - arrivals[0][1] >= 0.9
