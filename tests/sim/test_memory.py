"""Unit + property tests for the memory arena and its allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.memory import MemoryArena, OutOfMemory


def test_alloc_returns_aligned_addresses():
    arena = MemoryArena(4096)
    a = arena.alloc(10, align=64)
    assert a % 64 == 0
    b = arena.alloc(10, align=256)
    assert b % 256 == 0


def test_alloc_free_roundtrip_restores_space():
    arena = MemoryArena(1024)
    before = arena.free_bytes()
    a = arena.alloc(100)
    b = arena.alloc(200)
    arena.free(a)
    arena.free(b)
    assert arena.free_bytes() == before
    assert arena.allocated_bytes() == 0


def test_allocations_do_not_overlap():
    arena = MemoryArena(4096)
    spans = []
    for n in [100, 37, 512, 64, 1]:
        a = arena.alloc(n)
        spans.append((a, a + n))
    spans.sort()
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_out_of_memory_raised():
    arena = MemoryArena(256)
    arena.alloc(200)
    with pytest.raises(OutOfMemory):
        arena.alloc(100)


def test_free_unknown_address_rejected():
    arena = MemoryArena(256)
    with pytest.raises(ValueError):
        arena.free(10)


def test_coalescing_allows_full_size_realloc():
    arena = MemoryArena(1024)
    addrs = [arena.alloc(128, align=1) for _ in range(8)]
    for a in addrs:
        arena.free(a)
    # After coalescing a single 1024-byte block must be allocatable.
    big = arena.alloc(1024, align=1)
    assert big == 0


def test_read_write_roundtrip():
    arena = MemoryArena(1024)
    arena.write(100, b"hello world")
    assert arena.read(100, 11) == b"hello world"


def test_typed_access_little_endian():
    arena = MemoryArena(64)
    arena.write_u32(0, 0x11223344)
    assert arena.read(0, 4) == bytes([0x44, 0x33, 0x22, 0x11])
    assert arena.read_u32(0) == 0x11223344
    arena.write_u64(8, 0xDEADBEEFCAFEBABE)
    assert arena.read_u64(8) == 0xDEADBEEFCAFEBABE
    arena.write_u16(20, 0xABCD)
    assert arena.read_u16(20) == 0xABCD


def test_bounds_checking():
    arena = MemoryArena(64)
    with pytest.raises(IndexError):
        arena.read(60, 8)
    with pytest.raises(IndexError):
        arena.write(-1, b"x")
    with pytest.raises(IndexError):
        arena.read_u64(60)


def test_fill():
    arena = MemoryArena(64)
    arena.fill(8, 16, 0xAB)
    assert arena.read(8, 16) == bytes([0xAB]) * 16
    assert arena.read(0, 8) == bytes(8)


def test_cas_u32_semantics():
    arena = MemoryArena(64)
    arena.write_u32(0, 5)
    assert arena.cas_u32(0, 5, 9) is True
    assert arena.read_u32(0) == 9
    assert arena.cas_u32(0, 5, 11) is False
    assert arena.read_u32(0) == 9


def test_faa_u32_semantics():
    arena = MemoryArena(64)
    arena.write_u32(0, 10)
    assert arena.faa_u32(0, 3) == 10
    assert arena.read_u32(0) == 13
    # Wraps at 32 bits.
    arena.write_u32(4, 0xFFFFFFFF)
    assert arena.faa_u32(4, 1) == 0xFFFFFFFF
    assert arena.read_u32(4) == 0


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 300)),
        min_size=1,
        max_size=60,
    )
)
def test_allocator_invariants_random_workload(ops):
    """Free bytes + allocated bytes always partition the arena; no overlaps."""
    arena = MemoryArena(8192)
    live = []
    for kind, n in ops:
        if kind == "alloc":
            try:
                a = arena.alloc(n, align=8)
            except OutOfMemory:
                continue
            live.append((a, n))
        elif live:
            idx = n % len(live)
            a, _ = live.pop(idx)
            arena.free(a)
        # Invariant 1: partition.
        assert arena.free_bytes() + arena.allocated_bytes() <= arena.size
        # Invariant 2: no overlap among live allocations.
        spans = sorted((a, a + l) for a, l in live)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=1, max_size=128), addr=st.integers(0, 512))
def test_write_read_property(data, addr):
    arena = MemoryArena(1024)
    arena.write(addr, data)
    assert arena.read(addr, len(data)) == data
