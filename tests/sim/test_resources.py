"""Unit tests for Resource, Store and TokenBucket."""

import pytest

from repro.sim.core import Environment, SimulationError
from repro.sim.resources import Resource, Store, TokenBucket


# ---------------------------------------------------------------- Resource
def test_resource_serialises_single_capacity():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def user(i):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(2)
        res.release(req)
        spans.append((i, start, env.now))

    for i in range(3):
        env.process(user(i))
    env.run()
    assert spans == [(0, 0, 2), (1, 2, 4), (2, 4, 6)]


def test_resource_capacity_two_runs_pairs():
    env = Environment()
    res = Resource(env, capacity=2)
    finishes = []

    def user(i):
        req = res.request()
        yield req
        yield env.timeout(1)
        res.release(req)
        finishes.append((i, env.now))

    for i in range(4):
        env.process(user(i))
    env.run()
    assert [t for _, t in finishes] == [1, 1, 2, 2]


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(i):
        req = res.request()
        yield req
        order.append(i)
        yield env.timeout(1)
        res.release(req)

    for i in range(5):
        env.process(user(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def impatient():
        req = res.request()
        yield env.timeout(1)
        res.release(req)  # cancel while still queued

    def patient():
        req = res.request()
        yield req
        granted.append(env.now)
        res.release(req)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert granted == [10]


def test_resource_release_foreign_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    other = Resource(env, capacity=1)
    req = other.request()
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_bad_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_counters():
    env = Environment()
    res = Resource(env, capacity=2)

    def user():
        req = res.request()
        yield req
        assert res.count >= 1
        yield env.timeout(1)
        res.release(req)

    for _ in range(3):
        env.process(user())
    env.run()
    assert res.count == 0
    assert res.total_grants == 3


# ---------------------------------------------------------------- Store
def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            got = store.get()
            v = yield got
            out.append((env.now, v))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [v for _, v in out] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer():
        v = yield store.get()
        times.append((env.now, v))

    def producer():
        yield env.timeout(5)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [(5, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("a-in", env.now))
        yield store.put("b")
        events.append(("b-in", env.now))

    def consumer():
        yield env.timeout(4)
        v = yield store.get()
        events.append((f"{v}-out", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("a-in", 0) in events
    assert ("b-in", 4) in events  # blocked until 'a' consumed


def test_store_try_get():
    env = Environment()
    store = Store(env)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("z")

    def check():
        yield env.timeout(0)
        ok2, item2 = store.try_get()
        assert ok2 and item2 == "z"

    env.process(check())
    env.run()


def test_store_handoff_to_waiting_getter():
    env = Environment()
    store = Store(env)
    out = []

    def consumer(i):
        v = yield store.get()
        out.append((i, v))

    def producer():
        yield env.timeout(1)
        yield store.put("first")
        yield store.put("second")

    env.process(consumer(0))
    env.process(consumer(1))
    env.process(producer())
    env.run()
    assert out == [(0, "first"), (1, "second")]


# ---------------------------------------------------------------- TokenBucket
def test_tokenbucket_idle_transfer_time():
    env = Environment()
    pipe = TokenBucket(env, rate=100.0)  # 100 B/s
    done_at = []

    def sender():
        yield pipe.transfer(50)
        done_at.append(env.now)

    env.process(sender())
    env.run()
    assert done_at == [pytest.approx(0.5)]


def test_tokenbucket_serialises_concurrent_transfers():
    env = Environment()
    pipe = TokenBucket(env, rate=100.0)
    done_at = []

    def sender(i):
        yield pipe.transfer(100)
        done_at.append((i, env.now))

    env.process(sender(0))
    env.process(sender(1))
    env.run()
    # Aggregate throughput preserved: 200 bytes take 2 seconds total.
    assert done_at[0] == (0, pytest.approx(1.0))
    assert done_at[1] == (1, pytest.approx(2.0))


def test_tokenbucket_traffic_counter():
    env = Environment()
    pipe = TokenBucket(env, rate=1000.0)

    def sender():
        yield pipe.transfer(300)
        yield pipe.transfer(200)

    env.process(sender())
    env.run()
    assert pipe.bytes_total == 500
    assert pipe.utilisation(1.0) == pytest.approx(0.5)


def test_tokenbucket_zero_bytes_is_instant():
    env = Environment()
    pipe = TokenBucket(env, rate=10.0)
    done = []

    def sender():
        yield pipe.transfer(0)
        done.append(env.now)

    env.process(sender())
    env.run()
    assert done == [0.0]


def test_tokenbucket_rejects_bad_rate():
    env = Environment()
    with pytest.raises(ValueError):
        TokenBucket(env, rate=0)
