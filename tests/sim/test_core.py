"""Unit tests for the DES kernel (events, processes, conditions)."""

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(1.5)
        log.append(env.now)
        yield env.timeout(0.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [1.5, 2.0]


def test_process_return_value_propagates():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 42

    def outer():
        value = yield env.process(inner())
        return value + 1

    p = env.process(outer())
    assert env.run(until=p) == 43


def test_event_succeed_and_value():
    env = Environment()
    ev = env.event()
    results = []

    def waiter():
        v = yield ev
        results.append(v)

    def firer():
        yield env.timeout(3)
        ev.succeed("payload")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert results == ["payload"]
    assert ev.ok and ev.value == "payload"


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_aborts_simulation():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("unseen")

    env.process(bad())
    with pytest.raises(RuntimeError, match="unseen"):
        env.run()


def test_watched_process_failure_does_not_abort():
    env = Environment()
    seen = []

    def bad():
        yield env.timeout(1)
        raise RuntimeError("seen")

    def watcher():
        try:
            yield env.process(bad())
        except RuntimeError as exc:
            seen.append(str(exc))

    env.process(watcher())
    env.run()
    assert seen == ["seen"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_yield_non_event_rejected():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        for _ in range(10):
            yield env.timeout(1)

    env.process(proc())
    env.run(until=4.5)
    assert env.now == 4.5


def test_run_until_event_returns_value():
    env = Environment()
    ev = env.event()

    def firer():
        yield env.timeout(2)
        ev.succeed("done")

    env.process(firer())
    assert env.run(until=ev) == "done"
    assert env.now == 2


def test_run_until_never_fired_event_raises():
    env = Environment()
    ev = env.event()

    def proc():
        yield env.timeout(1)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        assert set(result.values()) == {"a", "b"}

    env.process(proc())
    env.run()
    assert times == [3]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield env.any_of([t1, t2])
        times.append(env.now)
        assert list(result.values()) == ["fast"]

    env.process(proc())
    env.run()
    assert times == [1]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            causes.append((env.now, i.cause))

    def attacker(p):
        yield env.timeout(2)
        p.interrupt("revoked")

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert causes == [(2, "revoked")]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def victim():
        yield env.timeout(1)

    def attacker(p):
        yield env.timeout(5)
        with pytest.raises(SimulationError):
            p.interrupt()

    p = env.process(victim())
    env.process(attacker(p))
    env.run()


def test_determinism_same_seed_same_trace():
    def build():
        env = Environment()
        trace = []

        def worker(i, delay):
            yield env.timeout(delay)
            trace.append((env.now, i))
            yield env.timeout(delay)
            trace.append((env.now, i))

        for i in range(20):
            env.process(worker(i, 1 + (i % 3)))
        env.run()
        return trace

    assert build() == build()


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []

    def worker(i):
        yield env.timeout(1)
        order.append(i)

    for i in range(10):
        env.process(worker(i))
    env.run()
    assert order == list(range(10))


def test_yield_already_processed_event():
    env = Environment()
    values = []

    def proc():
        t = env.timeout(1, value="x")
        yield env.timeout(5)
        # t has long fired; yielding it must resume immediately with its value
        v = yield t
        values.append((env.now, v))

    env.process(proc())
    env.run()
    assert values == [(5, "x")]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_nested_process_chain():
    env = Environment()

    def level3():
        yield env.timeout(1)
        return "deep"

    def level2():
        v = yield env.process(level3())
        return v + "er"

    def level1():
        v = yield env.process(level2())
        return v + "!"

    p = env.process(level1())
    assert env.run(until=p) == "deep" + "er" + "!"
