"""Additional DES kernel edge cases and conservation properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.core import AnyOf, Environment, Interrupt, SimulationError
from repro.sim.resources import Resource, Store, TokenBucket


def test_anyof_failure_propagates():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise ValueError("early death")

    def waiter():
        p = env.process(failer())
        t = env.timeout(100)
        try:
            yield env.any_of([p, t])
        except ValueError as e:
            caught.append(str(e))

    env.process(waiter())
    env.run()
    assert caught == ["early death"]


def test_interrupt_while_waiting_on_resource():
    env = Environment()
    res = Resource(env, 1)
    outcome = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def waiter():
        req = res.request()
        try:
            yield req
            outcome.append("granted")
        except Interrupt:
            res.release(req)  # cancel the queued request
            outcome.append("interrupted")

    def attacker(p):
        yield env.timeout(5)
        p.interrupt()

    env.process(holder())
    p = env.process(waiter())
    env.process(attacker(p))
    env.run()
    assert outcome == ["interrupted"]
    assert res.queue_len == 0


def test_interrupt_cause_roundtrip_and_resume():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append(i.cause)
        # The process continues normally after handling the interrupt.
        yield env.timeout(1)
        log.append(env.now)

    def attacker(p):
        yield env.timeout(3)
        p.interrupt({"reason": "lease revoked"})

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert log == [{"reason": "lease revoked"}, 4]


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_run_until_past_time_rejected():
    env = Environment()

    def proc():
        yield env.timeout(10)

    env.process(proc())
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_store_fifo_under_heavy_interleaving():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(50):
            yield store.put(i)
            if i % 7 == 0:
                yield env.timeout(1)

    def consumer():
        for _ in range(50):
            v = yield store.get()
            got.append(v)
            if v % 5 == 0:
                yield env.timeout(1)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == list(range(50))


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=20),
    rate=st.floats(1e3, 1e9),
)
def test_tokenbucket_aggregate_throughput_conserved(sizes, rate):
    """N transfers through one pipe finish no earlier than sum(bytes)/rate."""
    env = Environment()
    pipe = TokenBucket(env, rate)
    done = []

    def sender(n):
        yield pipe.transfer(n)
        done.append(env.now)

    for n in sizes:
        env.process(sender(n))
    env.run()
    assert len(done) == len(sizes)
    total_time = max(done)
    assert total_time >= sum(sizes) / rate * 0.999999


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 5),
    holds=st.lists(st.floats(0.1, 3.0), min_size=1, max_size=15),
)
def test_resource_never_oversubscribed(capacity, holds):
    env = Environment()
    res = Resource(env, capacity)
    max_seen = [0]

    def user(hold):
        req = res.request()
        yield req
        max_seen[0] = max(max_seen[0], res.count)
        yield env.timeout(hold)
        res.release(req)

    for h in holds:
        env.process(user(h))
    env.run()
    assert max_seen[0] <= capacity
    assert res.count == 0


def test_process_interrupting_itself_rejected():
    env = Environment()

    def selfish():
        yield env.timeout(0)
        me = env.active_process
        with pytest.raises(SimulationError):
            me.interrupt()

    env.process(selfish())
    env.run()


def test_clock_never_goes_backwards():
    env = Environment()
    stamps = []

    def proc(delay):
        for _ in range(5):
            yield env.timeout(delay)
            stamps.append(env.now)

    for d in (0.5, 1.0, 0.3):
        env.process(proc(d))
    env.run()
    assert stamps == sorted(stamps)
